"""Canonical CSV serialization of benchmark datasets.

The record format mirrors the paper's Table 1 schema (Figure 9): one
reading per row with ``household_id, hour_index, consumption_kwh,
temperature_c``.  Partitioned files drop the id column (it is the file
name).  All text I/O in the package funnels through these functions so that
every engine parses identical bytes.
"""

from __future__ import annotations

import csv
from pathlib import Path

import numpy as np

from repro.exceptions import DatasetFormatError
from repro.timeseries.series import Dataset

#: Header of the un-partitioned (one big file) format.
UNPARTITIONED_HEADER = ["household_id", "hour", "consumption", "temperature"]
#: Header of the partitioned (file per consumer) format.
PARTITIONED_HEADER = ["hour", "consumption", "temperature"]


def write_unpartitioned(dataset: Dataset, path: str | Path) -> Path:
    """Write the whole dataset as one CSV file (one reading per row)."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    with path.open("w", newline="") as fh:
        writer = csv.writer(fh)
        writer.writerow(UNPARTITIONED_HEADER)
        for i, cid in enumerate(dataset.consumer_ids):
            cons = dataset.consumption[i]
            temp = dataset.temperature[i]
            writer.writerows(
                (cid, t, f"{cons[t]:.6f}", f"{temp[t]:.4f}")
                for t in range(dataset.n_hours)
            )
    return path


def write_partitioned(dataset: Dataset, directory: str | Path) -> list[Path]:
    """Write one CSV file per consumer into ``directory``.

    Returns the file paths in consumer order.  File name is ``<id>.csv``.
    """
    directory = Path(directory)
    directory.mkdir(parents=True, exist_ok=True)
    paths: list[Path] = []
    for i, cid in enumerate(dataset.consumer_ids):
        path = directory / f"{cid}.csv"
        cons = dataset.consumption[i]
        temp = dataset.temperature[i]
        with path.open("w", newline="") as fh:
            writer = csv.writer(fh)
            writer.writerow(PARTITIONED_HEADER)
            writer.writerows(
                (t, f"{cons[t]:.6f}", f"{temp[t]:.4f}")
                for t in range(dataset.n_hours)
            )
        paths.append(path)
    return paths


def read_consumer_file(path: str | Path) -> tuple[np.ndarray, np.ndarray]:
    """Read one partitioned consumer file -> (consumption, temperature)."""
    path = Path(path)
    try:
        data = np.loadtxt(
            path, delimiter=",", skiprows=1, usecols=(1, 2), ndmin=2
        )
    except (OSError, ValueError) as exc:
        raise DatasetFormatError(f"cannot parse consumer file {path}: {exc}") from exc
    if data.size == 0:
        raise DatasetFormatError(f"consumer file {path} has no readings")
    return data[:, 0].copy(), data[:, 1].copy()


def _read_consumer_files(paths: list[Path]) -> list[tuple[np.ndarray, np.ndarray]]:
    """Parse a batch of consumer files (the unit shipped to worker processes)."""
    return [read_consumer_file(path) for path in paths]


def read_partitioned(
    directory: str | Path, name: str = "dataset", n_jobs: int = 1
) -> Dataset:
    """Read a directory of per-consumer CSV files into a Dataset.

    ``n_jobs`` > 1 parses the files across that many worker processes
    (:func:`repro.parallel.parallel_map_items`) — file order, and hence
    the dataset, is identical for every value.
    """
    directory = Path(directory)
    files = sorted(directory.glob("*.csv"))
    if not files:
        raise DatasetFormatError(f"no consumer files found in {directory}")
    if n_jobs != 1:
        from repro.parallel import parallel_map_items  # lazy: avoids cycle

        parsed = parallel_map_items(_read_consumer_files, files, n_jobs=n_jobs)
    else:
        parsed = _read_consumer_files(files)
    ids = [path.stem for path in files]
    cons_rows = [cons for cons, _ in parsed]
    temp_rows = [temp for _, temp in parsed]
    lengths = {len(c) for c in cons_rows}
    if len(lengths) != 1:
        raise DatasetFormatError(
            f"consumer files in {directory} have differing lengths: {sorted(lengths)}"
        )
    return Dataset(
        consumer_ids=ids,
        consumption=np.stack(cons_rows),
        temperature=np.stack(temp_rows),
        name=name,
    )


def read_unpartitioned(path: str | Path, name: str = "dataset") -> Dataset:
    """Read the one-big-file CSV format into a Dataset.

    Readings for one household must be contiguous and hour-ordered, which is
    how :func:`write_unpartitioned` lays them out.
    """
    path = Path(path)
    ids: list[str] = []
    cons_rows: list[list[float]] = []
    temp_rows: list[list[float]] = []
    current_id: str | None = None
    try:
        with path.open(newline="") as fh:
            reader = csv.reader(fh)
            header = next(reader, None)
            if header != UNPARTITIONED_HEADER:
                raise DatasetFormatError(
                    f"{path}: unexpected header {header!r}"
                )
            for row in reader:
                if len(row) != 4:
                    raise DatasetFormatError(f"{path}: malformed row {row!r}")
                cid = row[0]
                if cid != current_id:
                    if cid in ids:
                        raise DatasetFormatError(
                            f"{path}: household {cid!r} is not contiguous"
                        )
                    ids.append(cid)
                    cons_rows.append([])
                    temp_rows.append([])
                    current_id = cid
                cons_rows[-1].append(float(row[2]))
                temp_rows[-1].append(float(row[3]))
    except OSError as exc:
        raise DatasetFormatError(f"cannot read {path}: {exc}") from exc
    if not ids:
        raise DatasetFormatError(f"{path} contains no readings")
    lengths = {len(c) for c in cons_rows}
    if len(lengths) != 1:
        raise DatasetFormatError(
            f"{path}: households have differing reading counts: {sorted(lengths)}"
        )
    return Dataset(
        consumer_ids=ids,
        consumption=np.array(cons_rows),
        temperature=np.array(temp_rows),
        name=name,
    )
