"""Canonical CSV serialization of benchmark datasets.

The record format mirrors the paper's Table 1 schema (Figure 9): one
reading per row with ``household_id, hour_index, consumption_kwh,
temperature_c``.  Partitioned files drop the id column (it is the file
name).  All text I/O in the package funnels through these functions so that
every engine parses identical bytes.
"""

from __future__ import annotations

import csv
import math
import warnings
from pathlib import Path

import numpy as np

from repro.exceptions import DatasetFormatError
from repro.timeseries.series import Dataset

#: Header of the un-partitioned (one big file) format.
UNPARTITIONED_HEADER = ["household_id", "hour", "consumption", "temperature"]
#: Header of the partitioned (file per consumer) format.
PARTITIONED_HEADER = ["hour", "consumption", "temperature"]

#: Characters that force ``csv.writer`` to quote a field.  Numeric columns
#: never contain them; household ids that do take the slow quoting path.
_CSV_SPECIALS = (",", '"', "\r", "\n")

#: csv.writer's default line terminator — the vectorized writers emit the
#: same bytes the row-at-a-time ``csv`` module produced.
_CSV_EOL = "\r\n"


def _row_strings(cons: np.ndarray, temp: np.ndarray, hour_col: np.ndarray) -> list[str]:
    """Pre-formatted ``"hour,consumption,temperature"`` row strings.

    ``np.char.mod`` formats each numeric column in one vectorized call
    (``%.6f`` / ``%.4f`` produce the same correctly-rounded text as the
    f-strings they replace); per-row work is then only string joins.
    """
    cons_col = np.char.mod("%.6f", cons)
    temp_col = np.char.mod("%.4f", temp)
    sep = np.full(cons_col.shape, ",", dtype=object)
    return list(hour_col + sep + cons_col + sep + temp_col)


def _hour_column(n_hours: int) -> np.ndarray:
    """The ``0..n_hours-1`` hour index column as an object-string array."""
    return np.char.mod("%d", np.arange(n_hours)).astype(object)


def write_unpartitioned(dataset: Dataset, path: str | Path) -> Path:
    """Write the whole dataset as one CSV file (one reading per row)."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    hour_col = _hour_column(dataset.n_hours)
    with path.open("w", newline="") as fh:
        writer = csv.writer(fh)
        writer.writerow(UNPARTITIONED_HEADER)
        for i, cid in enumerate(dataset.consumer_ids):
            rows = _row_strings(
                dataset.consumption[i], dataset.temperature[i], hour_col
            )
            if any(ch in cid for ch in _CSV_SPECIALS):
                # Ids that need quoting go through the csv module so the
                # escaping rules stay exactly its own.
                writer.writerows((cid, *row.split(",")) for row in rows)
                continue
            prefix = cid + ","
            fh.write(prefix + (_CSV_EOL + prefix).join(rows) + _CSV_EOL)
    return path


def write_partitioned(dataset: Dataset, directory: str | Path) -> list[Path]:
    """Write one CSV file per consumer into ``directory``.

    Returns the file paths in consumer order.  File name is ``<id>.csv``.
    """
    directory = Path(directory)
    directory.mkdir(parents=True, exist_ok=True)
    hour_col = _hour_column(dataset.n_hours)
    paths: list[Path] = []
    for i, cid in enumerate(dataset.consumer_ids):
        path = directory / f"{cid}.csv"
        rows = _row_strings(
            dataset.consumption[i], dataset.temperature[i], hour_col
        )
        with path.open("w", newline="") as fh:
            writer = csv.writer(fh)
            writer.writerow(PARTITIONED_HEADER)
            fh.write(_CSV_EOL.join(rows) + _CSV_EOL)
        paths.append(path)
    return paths


def _describe_bad_consumer_row(path: Path) -> str | None:
    """Locate the first malformed row of a consumer file, for error text.

    Only runs after the vectorized fast path has already failed (or found
    non-finite data), so the extra pass costs nothing on clean files.
    """
    expected = len(PARTITIONED_HEADER)
    try:
        with path.open(newline="") as fh:
            reader = csv.reader(fh)
            next(reader, None)
            for row in reader:
                if not row:
                    continue
                if len(row) != expected:
                    return (
                        f"{path}:{reader.line_num}: expected {expected} "
                        f"columns, got {len(row)} in row {row!r}"
                    )
                for token in row:
                    try:
                        value = float(token)
                    except ValueError:
                        return (
                            f"{path}:{reader.line_num}: non-numeric token "
                            f"{token!r}"
                        )
                    if not math.isfinite(value):
                        return (
                            f"{path}:{reader.line_num}: non-finite reading "
                            f"{token!r}"
                        )
    except OSError:
        return None
    return None


def read_consumer_file(path: str | Path) -> tuple[np.ndarray, np.ndarray]:
    """Read one partitioned consumer file -> (consumption, temperature).

    Rows with extra or missing columns and non-finite readings are
    rejected with a :class:`DatasetFormatError` naming the offending
    line; the happy path stays one vectorized ``np.loadtxt`` call.
    """
    path = Path(path)
    try:
        with warnings.catch_warnings():
            # Empty files raise our own DatasetFormatError below; numpy's
            # "input contained no data" warning is just noise before that.
            warnings.filterwarnings(
                "ignore", message="loadtxt: input contained no data"
            )
            data = np.loadtxt(path, delimiter=",", skiprows=1, ndmin=2)
    except OSError as exc:
        raise DatasetFormatError(f"cannot parse consumer file {path}: {exc}") from exc
    except ValueError as exc:
        raise DatasetFormatError(
            _describe_bad_consumer_row(path)
            or f"cannot parse consumer file {path}: {exc}"
        ) from exc
    if data.size == 0:
        raise DatasetFormatError(f"consumer file {path} has no readings")
    if data.shape[1] != len(PARTITIONED_HEADER):
        raise DatasetFormatError(
            _describe_bad_consumer_row(path)
            or (
                f"{path}: expected {len(PARTITIONED_HEADER)} columns, "
                f"got {data.shape[1]}"
            )
        )
    if not np.isfinite(data).all():
        raise DatasetFormatError(
            _describe_bad_consumer_row(path) or f"{path}: non-finite reading"
        )
    return data[:, 1].copy(), data[:, 2].copy()


def _read_consumer_files(paths: list[Path]) -> list[tuple[np.ndarray, np.ndarray]]:
    """Parse a batch of consumer files (the unit shipped to worker processes)."""
    return [read_consumer_file(path) for path in paths]


def _active_ingest_config(on_dirty):
    """Resolve ``on_dirty`` against the process default (lazy import)."""
    from repro.ingest.policy import resolve_ingest_config  # avoids cycle

    return resolve_ingest_config(on_dirty)


def read_partitioned(
    directory: str | Path,
    name: str = "dataset",
    n_jobs: int = 1,
    on_dirty: str | None = None,
    quality=None,
    report=None,
) -> Dataset:
    """Read a directory of per-consumer CSV files into a Dataset.

    ``n_jobs`` > 1 parses the files across that many worker processes
    (:func:`repro.parallel.parallel_map_items`) — file order, and hence
    the dataset, is identical for every value.

    ``on_dirty`` selects the ingest policy (``strict`` | ``repair`` |
    ``quarantine``; None inherits the process default, normally strict).
    Non-strict policies route through :mod:`repro.ingest.reader` —
    bit-identical on clean input — collecting findings into ``quality``
    (a :class:`~repro.ingest.report.QualityReport`) and quarantines into
    ``report`` (an :class:`~repro.resilience.report.ExecutionReport`).
    """
    config = _active_ingest_config(on_dirty)
    if not config.strict:
        from repro.ingest.reader import ingest_partitioned  # lazy: cycle

        return ingest_partitioned(
            directory,
            name=name,
            n_jobs=n_jobs,
            config=config,
            quality=quality,
            report=report,
        )
    directory = Path(directory)
    files = sorted(directory.glob("*.csv"))
    if not files:
        raise DatasetFormatError(f"no consumer files found in {directory}")
    if n_jobs != 1:
        from repro.parallel import parallel_map_items  # lazy: avoids cycle

        parsed = parallel_map_items(_read_consumer_files, files, n_jobs=n_jobs)
    else:
        parsed = _read_consumer_files(files)
    ids = [path.stem for path in files]
    cons_rows = [cons for cons, _ in parsed]
    temp_rows = [temp for _, temp in parsed]
    lengths = {len(c) for c in cons_rows}
    if len(lengths) != 1:
        raise DatasetFormatError(
            f"consumer files in {directory} have differing lengths: {sorted(lengths)}"
        )
    return Dataset(
        consumer_ids=ids,
        consumption=np.stack(cons_rows),
        temperature=np.stack(temp_rows),
        name=name,
    )


def read_unpartitioned(
    path: str | Path,
    name: str = "dataset",
    on_dirty: str | None = None,
    quality=None,
    report=None,
) -> Dataset:
    """Read the one-big-file CSV format into a Dataset.

    Readings for one household must be contiguous and hour-ordered, which is
    how :func:`write_unpartitioned` lays them out.

    ``on_dirty`` / ``quality`` / ``report`` behave as in
    :func:`read_partitioned`: a non-strict ingest policy tolerates and
    repairs or quarantines dirty households instead of raising.
    """
    config = _active_ingest_config(on_dirty)
    if not config.strict:
        from repro.ingest.reader import ingest_unpartitioned  # lazy: cycle

        return ingest_unpartitioned(
            path, name=name, config=config, quality=quality, report=report
        )
    path = Path(path)
    ids: list[str] = []
    seen: set[str] = set()  # membership lookups; `ids` keeps file order
    cons_rows: list[list[float]] = []
    temp_rows: list[list[float]] = []
    current_id: str | None = None
    try:
        with path.open(newline="") as fh:
            reader = csv.reader(fh)
            header = next(reader, None)
            if header != UNPARTITIONED_HEADER:
                raise DatasetFormatError(
                    f"{path}: unexpected header {header!r}"
                )
            for row in reader:
                if len(row) != 4:
                    raise DatasetFormatError(f"{path}: malformed row {row!r}")
                cid = row[0]
                if cid != current_id:
                    if cid in seen:
                        raise DatasetFormatError(
                            f"{path}: household {cid!r} is not contiguous"
                        )
                    seen.add(cid)
                    ids.append(cid)
                    cons_rows.append([])
                    temp_rows.append([])
                    current_id = cid
                try:
                    cons_value = float(row[2])
                    temp_value = float(row[3])
                except ValueError:
                    raise DatasetFormatError(
                        f"{path}:{reader.line_num}: non-numeric reading "
                        f"in row {row!r}"
                    ) from None
                cons_rows[-1].append(cons_value)
                temp_rows[-1].append(temp_value)
    except OSError as exc:
        raise DatasetFormatError(f"cannot read {path}: {exc}") from exc
    if not ids:
        raise DatasetFormatError(f"{path} contains no readings")
    lengths = {len(c) for c in cons_rows}
    if len(lengths) != 1:
        raise DatasetFormatError(
            f"{path}: households have differing reading counts: {sorted(lengths)}"
        )
    return Dataset(
        consumer_ids=ids,
        consumption=np.array(cons_rows),
        temperature=np.array(temp_rows),
        name=name,
    )
