"""Out-of-core task execution over the partitioned v2 store.

The benchmark's largest configuration (1M consumers x 1 year = 8760
hourly readings) is ~70 GB of float64 per measurement column — far past
laptop RAM.  The v2 store's partition grid makes the fix mechanical: all
four benchmark tasks consume *whole consumer rows*, so execution streams
**consumer-block-at-a-time** — each block's rows are assembled full-width
(every hour), the task kernel runs on the block, and the block is dropped
before the next one is decoded.  Peak residency is one block's matrices
(plus, for similarity, a second block and a score buffer), never the
dataset.

Because every consumer's row is assembled bit-exactly (the float codecs
are lossless and blocks never split the hour axis), per-consumer results
are bit-identical to an in-memory run — ``benchmarks/regress.py
--storage`` gates this for all four tasks.

The per-consumer entry point takes a ``block_fn`` callable rather than
importing engine kernels, keeping this module import-light (the engines
import :mod:`repro.columnar`, not the other way around).
"""

from __future__ import annotations

import numpy as np

from repro.columnar import operators as ops
from repro.columnar.partstore import PartitionedTable
from repro.core.similarity import clip_scores
from repro.exceptions import StorageError

#: Fallback per-run budget when the caller sets none: enough for a few
#: partition-aligned blocks on any development machine.
DEFAULT_MEMORY_BUDGET_BYTES = 512 * 1024 * 1024


def consumers_per_block(
    table: PartitionedTable,
    memory_budget_bytes: int | None,
    n_columns: int = 2,
    extra_bytes_per_consumer: int = 0,
) -> int:
    """Consumer-block size that keeps a block's working set under budget.

    A block's working set is its full-width float64 matrices
    (``n_hours * 8 * n_columns`` per consumer) plus the scan's decode
    scratch (~one partition batch, bounded by the block itself) — budgeted
    at 2x the assembled matrices — plus ``extra_bytes_per_consumer`` for
    task-side buffers.  The result is aligned down to the partition width
    when it can afford at least one partition column, so no partition file
    is decoded twice per sweep.
    """
    budget = (
        memory_budget_bytes
        if memory_budget_bytes is not None
        else DEFAULT_MEMORY_BUDGET_BYTES
    )
    per_consumer = table.n_hours * 8 * n_columns * 2 + extra_bytes_per_consumer
    if per_consumer <= 0:
        return max(1, table.n_households)
    block = budget // per_consumer
    if block < 1:
        raise StorageError(
            f"memory budget {budget} bytes cannot hold one consumer row "
            f"({per_consumer} bytes working set); raise the budget"
        )
    part = table.consumers_per_part
    if block >= part:
        block = (block // part) * part
    return int(min(block, max(1, table.n_households)))


def iter_consumer_blocks(
    table: PartitionedTable,
    columns: list[str] | None = None,
    memory_budget_bytes: int | None = None,
    block_consumers: int | None = None,
):
    """Yield ``(consumer0, ids, {col: (nc, n_hours) matrix})`` blocks.

    Rows are full-width and bit-exact; only the consumer axis is blocked.
    """
    cols = list(columns) if columns is not None else list(table.columns)
    if block_consumers is None:
        block_consumers = consumers_per_block(
            table, memory_budget_bytes, n_columns=len(cols)
        )
    n = table.n_households
    for c0 in range(0, n, block_consumers):
        c1 = min(c0 + block_consumers, n)
        ids, matrices = table.read_matrices(
            consumer_range=(c0, c1), columns=cols
        )
        yield c0, ids, matrices


def run_blocked(
    table: PartitionedTable,
    block_fn,
    columns: list[str] | None = None,
    memory_budget_bytes: int | None = None,
    block_consumers: int | None = None,
) -> dict:
    """Run a per-consumer task out-of-core and merge the per-block results.

    ``block_fn(ids, matrices) -> dict`` receives one consumer block's ids
    and full-width column matrices and returns per-consumer results keyed
    by id; blocks are processed in consumer order and merged.  Suitable
    for any task whose result for consumer *i* depends only on row *i*
    (histogram, 3-line, PAR) — such tasks are trivially bit-identical to
    the in-memory run.
    """
    out: dict = {}
    for _c0, ids, matrices in iter_consumer_blocks(
        table, columns, memory_budget_bytes, block_consumers
    ):
        out.update(block_fn(ids, matrices))
    return out


def blocked_similarity(
    table: PartitionedTable,
    top_k: int,
    memory_budget_bytes: int | None = None,
    block_consumers: int | None = None,
) -> dict[str, list[tuple[str, float]]]:
    """Out-of-core all-pairs cosine top-k, bit-identical to the in-memory
    hand-written path.

    Blocked nested-loop: for each *query* block (read once), every *data*
    block is streamed past it; each query row's scores against the data
    block are one elementwise multiply-and-sum per row — the exact
    arithmetic of the in-memory loop, because rows are never split.  The
    full n-length score vector per query consumer (8n bytes — the part
    that *does* fit in RAM at 1M consumers) is then normalized, clipped
    and ranked with the very same operators as the in-memory engine.

    Peak residency: query block + data block + per-query-block score
    buffer, all counted by :func:`consumers_per_block` via
    ``extra_bytes_per_consumer``.
    """
    n = table.n_households
    if block_consumers is None:
        # Working set: query block + data block (2 single-column blocks)
        # + the (block, n) score buffer.
        block_consumers = consumers_per_block(
            table,
            memory_budget_bytes,
            n_columns=2,
            extra_bytes_per_consumer=8 * n,
        )

    def blocks():
        return iter_consumer_blocks(
            table, ["consumption"], block_consumers=block_consumers
        )

    # Pass 1: norms, streamed — per-row arithmetic identical to the
    # in-memory `np.sqrt((cons * cons).sum(axis=1))`.
    norms = np.empty(n, dtype=np.float64)
    for c0, _ids, matrices in blocks():
        m = matrices["consumption"]
        norms[c0 : c0 + m.shape[0]] = np.sqrt((m * m).sum(axis=1))

    out: dict[str, list[tuple[str, float]]] = {}
    for q0, q_ids, q_matrices in blocks():
        qm = q_matrices["consumption"]
        score_buf = np.empty((qm.shape[0], n), dtype=np.float64)
        for d0, _d_ids, d_matrices in blocks():
            dm = d_matrices["consumption"]
            for qi in range(qm.shape[0]):
                # Hand-written dot: elementwise multiply-and-sum per row,
                # no BLAS matmul — matches the in-memory engine bit-for-bit.
                score_buf[qi, d0 : d0 + dm.shape[0]] = (dm * qm[qi]).sum(
                    axis=1
                )
        for qi, cid in enumerate(q_ids):
            i = q0 + qi
            if norms[i] == 0.0:
                scores = np.zeros(n)
            else:
                with np.errstate(invalid="ignore", divide="ignore"):
                    scores = clip_scores(
                        np.where(
                            norms > 0.0,
                            score_buf[qi] / (norms * norms[i]),
                            0.0,
                        )
                    )
            top = ops.top_k_by_score(scores, top_k, exclude=i)
            out[cid] = [
                (table.dictionary[j], float(scores[j])) for j in top
            ]
    return out
