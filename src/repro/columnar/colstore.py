"""Column-file storage with memory-mapped reads.

A :class:`ColumnTable` is a directory of ``.npy`` column files plus a JSON
metadata file.  Text columns are dictionary-encoded (codes in the column
file, the dictionary in the metadata), numeric columns are raw fixed-width
arrays — so *loading* a table is one ``mmap`` per column, which is exactly
why the paper's System C wins the data-loading experiments.

Tables ingested from a :class:`~repro.timeseries.series.Dataset` are stored
clustered by (household, hour), and the metadata records the fixed
readings-per-household stride, so per-household access is a pure slice.
Zone maps (per-block min/max) are kept for numeric columns to let scans
skip blocks.
"""

from __future__ import annotations

import json
import shutil
from dataclasses import dataclass
from pathlib import Path

import numpy as np

from repro.columnar.compression import IntColumnCodec
from repro.exceptions import StorageError
from repro.timeseries.series import Dataset

#: Rows per zone-map block.
ZONE_BLOCK = 8192

_META_FILE = "table.json"


@dataclass(frozen=True)
class ZoneMap:
    """Per-block min/max (plus NaN presence) for one numeric column.

    ``mins``/``maxs`` are NaN-ignoring bounds; ``has_nan`` marks blocks
    containing at least one NaN.  An all-NaN block carries
    ``min = +inf, max = -inf`` (empty value range) with ``has_nan`` set.
    ``has_nan`` may be ``None`` for zone maps persisted before it existed —
    such maps are only sound over NaN-free columns (the v1 ingest path
    guarantees that by construction).
    """

    mins: np.ndarray
    maxs: np.ndarray
    has_nan: np.ndarray | None = None

    def blocks_overlapping(self, lo: float, hi: float) -> np.ndarray:
        """Indices of blocks whose values may intersect ``[lo, hi]``.

        Defined behaviour at the edges:

        * **NaN-bearing blocks are never pruned** — a NaN value has an
          unknowable relationship to the range, so any block with
          ``has_nan`` set is always a candidate;
        * **empty zone maps** (zero blocks, e.g. an empty table) return
          an empty index array;
        * **NaN bounds are rejected** with :class:`StorageError` — a NaN
          query bound would silently match nothing, which is never what a
          caller meant.
        """
        if np.isnan(lo) or np.isnan(hi):
            raise StorageError(
                f"zone-map range bounds must not be NaN, got [{lo}, {hi}]"
            )
        if self.mins.size == 0:
            return np.array([], dtype=np.int64)
        mask = (self.maxs >= lo) & (self.mins <= hi)
        if self.has_nan is not None:
            mask |= self.has_nan.astype(bool)
        return np.flatnonzero(mask)

    @property
    def n_blocks(self) -> int:
        """Number of zone-mapped blocks."""
        return int(self.mins.size)


class ColumnTable:
    """One table: memory-mapped columns + dictionary + zone maps."""

    def __init__(
        self,
        directory: Path,
        meta: dict,
        columns: dict[str, np.ndarray],
        zone_maps: dict[str, ZoneMap],
    ) -> None:
        self.directory = directory
        self.name = meta["name"]
        self.n_rows = int(meta["n_rows"])
        self.dictionary: list[str] = meta.get("dictionary", [])
        self.stride: int | None = meta.get("stride")
        self._meta = meta
        self._columns = columns
        self.zone_maps = zone_maps
        self._dict_index: dict[str, int] | None = None

    # Access ------------------------------------------------------------

    @property
    def column_names(self) -> list[str]:
        """Names of the stored columns."""
        return sorted(self._columns)

    def column(self, name: str) -> np.ndarray:
        """The full (memory-mapped) column array."""
        try:
            return self._columns[name]
        except KeyError:
            raise StorageError(
                f"table {self.name!r} has no column {name!r}; "
                f"available: {self.column_names}"
            ) from None

    def decode(self, code: int) -> str:
        """Dictionary-decode a household code."""
        try:
            return self.dictionary[code]
        except IndexError:
            raise StorageError(f"code {code} outside dictionary") from None

    def encode(self, value: str) -> int:
        """Dictionary-encode a household id."""
        if self._dict_index is None:
            self._dict_index = {v: i for i, v in enumerate(self.dictionary)}
        try:
            return self._dict_index[value]
        except KeyError:
            raise StorageError(f"unknown household id {value!r}") from None

    def household_slice(self, code: int) -> slice:
        """Row range of one household (requires clustered fixed-stride data)."""
        if self.stride is None:
            raise StorageError(
                f"table {self.name!r} is not stored with a fixed stride"
            )
        if not 0 <= code < len(self.dictionary):
            raise StorageError(f"household code {code} out of range")
        return slice(code * self.stride, (code + 1) * self.stride)

    @property
    def n_households(self) -> int:
        """Number of dictionary-encoded households."""
        return len(self.dictionary)

    def memory_resident_bytes(self) -> int:
        """Bytes if all columns were fully materialized (upper bound)."""
        return sum(c.dtype.itemsize * c.size for c in self._columns.values())


class ColumnStore:
    """A directory of column tables."""

    def __init__(self, root: str | Path) -> None:
        self.root = Path(root)
        self.root.mkdir(parents=True, exist_ok=True)

    def _table_dir(self, name: str) -> Path:
        return self.root / name

    def list_tables(self) -> list[str]:
        """Names of tables present in the store."""
        return sorted(
            p.name for p in self.root.iterdir() if (p / _META_FILE).exists()
        )

    # Ingest ----------------------------------------------------------------

    def ingest_dataset(self, dataset: Dataset, name: str = "readings") -> "ColumnTable":
        """Write a dataset as a clustered column table and open it.

        Layout: rows sorted by (household, hour); columns ``household_code``
        (int32), ``hour`` (int32), ``consumption`` and ``temperature``
        (float64).  The conversion cost is the System C "load" cost; repeat
        opens are pure mmap.
        """
        directory = self._table_dir(name)
        if (directory / _META_FILE).exists():
            raise StorageError(f"table {name!r} already exists in {self.root}")
        directory.mkdir(parents=True, exist_ok=True)

        n, hours = dataset.consumption.shape
        codes = np.repeat(np.arange(n, dtype=np.int32), hours)
        hour_col = np.tile(np.arange(hours, dtype=np.int32), n)
        consumption = dataset.consumption.reshape(-1)
        temperature = dataset.temperature.reshape(-1)

        columns = {
            "household_code": codes,
            "hour": hour_col,
            "consumption": consumption,
            "temperature": temperature,
        }
        # Integer columns compress with delta+RLE (clustered codes and the
        # tiled hour column collapse to a handful of runs); float
        # measurement columns stay raw for memory-mapped scans.
        int_codec_columns = ("household_code", "hour")
        for col_name, data in columns.items():
            if col_name in int_codec_columns:
                payload = IntColumnCodec.encode(data)
                np.savez(
                    directory / f"{col_name}.rle.npz",
                    first=payload["first"],
                    run_values=payload["run_values"],
                    run_lengths=payload["run_lengths"],
                    n=payload["n"],
                )
            else:
                np.save(directory / f"{col_name}.npy", data)

        zone_meta: dict[str, dict] = {}
        for col_name in ("consumption", "temperature"):
            mins, maxs, has_nan = _build_zone_map(columns[col_name])
            np.save(directory / f"{col_name}.zmin.npy", mins)
            np.save(directory / f"{col_name}.zmax.npy", maxs)
            np.save(directory / f"{col_name}.znan.npy", has_nan)
            zone_meta[col_name] = {"blocks": int(mins.size)}

        meta = {
            "name": name,
            "n_rows": int(n * hours),
            "dictionary": list(dataset.consumer_ids),
            "stride": int(hours),
            "columns": sorted(columns),
            "int_codec_columns": list(int_codec_columns),
            "zone_maps": zone_meta,
        }
        (directory / _META_FILE).write_text(json.dumps(meta))
        return self.open(name)

    def open(self, name: str) -> ColumnTable:
        """Open a table: mmap every column file (the cheap System C load)."""
        directory = self._table_dir(name)
        meta_path = directory / _META_FILE
        if not meta_path.exists():
            raise StorageError(f"no table {name!r} in {self.root}")
        meta = json.loads(meta_path.read_text())
        codec_columns = set(meta.get("int_codec_columns", ()))
        columns = {}
        for col in meta["columns"]:
            if col in codec_columns:
                with np.load(directory / f"{col}.rle.npz") as payload:
                    columns[col] = IntColumnCodec.decode(
                        {
                            "first": int(payload["first"]),
                            "run_values": payload["run_values"],
                            "run_lengths": payload["run_lengths"],
                            "n": int(payload["n"]),
                        }
                    )
            else:
                columns[col] = np.load(directory / f"{col}.npy", mmap_mode="r")
        columns = dict(columns)
        zone_maps = {}
        for col in meta.get("zone_maps", {}):
            nan_path = directory / f"{col}.znan.npy"
            zone_maps[col] = ZoneMap(
                mins=np.load(directory / f"{col}.zmin.npy"),
                maxs=np.load(directory / f"{col}.zmax.npy"),
                has_nan=np.load(nan_path) if nan_path.exists() else None,
            )
        return ColumnTable(directory, meta, columns, zone_maps)

    def drop(self, name: str) -> None:
        """Delete a table's files, sidecars (zone maps, codec payloads,
        nested partition directories) included.

        Idempotent: a missing table directory is a no-op, so callers can
        unconditionally ``drop`` before re-ingesting.
        """
        directory = self._table_dir(name)
        if not directory.exists():
            return
        shutil.rmtree(directory)


def _build_zone_map(
    values: np.ndarray,
) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Per-block NaN-ignoring (min, max) plus a has-NaN flag per block.

    All-NaN blocks get the empty range ``(+inf, -inf)`` so value pruning
    never selects them — only the ``has_nan`` flag can.
    """
    n_blocks = (values.size + ZONE_BLOCK - 1) // ZONE_BLOCK
    mins = np.empty(n_blocks)
    maxs = np.empty(n_blocks)
    has_nan = np.zeros(n_blocks, dtype=bool)
    for b in range(n_blocks):
        block = values[b * ZONE_BLOCK : (b + 1) * ZONE_BLOCK]
        nan_mask = np.isnan(block)
        if nan_mask.all():
            mins[b], maxs[b], has_nan[b] = np.inf, -np.inf, True
        elif nan_mask.any():
            mins[b] = np.nanmin(block)
            maxs[b] = np.nanmax(block)
            has_nan[b] = True
        else:
            mins[b] = block.min()
            maxs[b] = block.max()
    return mins, maxs, has_nan
