"""Lightweight column compression codecs.

Column stores earn much of their I/O advantage from compressing columns
that real data keeps highly regular.  Three codec families are provided:

* **RLE** (run-length encoding) — ideal for the clustered
  ``household_code`` column, which is literally ``stride`` repeats of each
  code (compression ratio ~ stride);
* **FOR/delta** (frame-of-reference on deltas) — for the ``hour`` column,
  whose per-household sections are ``0, 1, 2, ...`` (constant delta runs
  collapse under RLE after differencing);
* **decimal scaling** (:class:`FloatColumnCodec`) — for measurement
  columns: real meters report at a fixed decimal precision, so a float64
  reading column is usually an integer column in disguise.  When every
  value survives a ``round(v * 10^d) / 10^d`` round trip *bit-exactly*,
  the codec stores the scaled integers in the narrowest dtype that fits
  (int16 for kWh at 3 decimals — a 4x saving); otherwise it falls back to
  RLE over the raw bit patterns, then ``zlib``, then raw.  Every mode is
  lossless to the bit, including NaN/inf payloads.

All codecs are exactness-tested: decode(encode(x)) reproduces ``x``
bit-for-bit.  Integer delta arithmetic deliberately relies on int64
*modular* (two's-complement wraparound) semantics so deltas that overflow
near the int64 bounds still round-trip — the cumulative sum wraps back.
"""

from __future__ import annotations

import zlib

import numpy as np

from repro.exceptions import StorageError


def rle_encode(values: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
    """Run-length encode an integer array into (run_values, run_lengths)."""
    values = np.asarray(values)
    if values.ndim != 1:
        raise StorageError(f"RLE expects a 1-D array, got shape {values.shape}")
    if values.size == 0:
        return values[:0].copy(), np.array([], dtype=np.int64)
    boundaries = np.flatnonzero(values[1:] != values[:-1]) + 1
    starts = np.concatenate([[0], boundaries])
    ends = np.concatenate([boundaries, [values.size]])
    return values[starts].copy(), (ends - starts).astype(np.int64)


def rle_decode(run_values: np.ndarray, run_lengths: np.ndarray) -> np.ndarray:
    """Inverse of :func:`rle_encode`."""
    run_values = np.asarray(run_values)
    run_lengths = np.asarray(run_lengths)
    if run_values.shape != run_lengths.shape:
        raise StorageError(
            f"run arrays disagree: {run_values.shape} vs {run_lengths.shape}"
        )
    if (run_lengths < 0).any():
        raise StorageError("negative run length")
    return np.repeat(run_values, run_lengths)


def delta_encode(values: np.ndarray) -> tuple[int, np.ndarray]:
    """Delta encoding: (first_value, diffs).

    Integer-exact under int64 modular arithmetic: a delta that overflows
    (e.g. ``int64.max - int64.min``) wraps, and :func:`delta_decode`'s
    wrapping cumulative sum undoes it, so any int64 input round-trips.
    """
    values = np.asarray(values)
    if values.ndim != 1 or values.size == 0:
        raise StorageError("delta encoding expects a non-empty 1-D array")
    with np.errstate(over="ignore"):
        diffs = np.diff(values.astype(np.int64, copy=False))
    return int(values[0]), diffs


def delta_decode(first: int, diffs: np.ndarray) -> np.ndarray:
    """Inverse of :func:`delta_encode` (wraps like the encoder)."""
    diffs = np.asarray(diffs)
    out = np.empty(diffs.size + 1, dtype=np.int64)
    out[0] = first
    with np.errstate(over="ignore"):
        np.cumsum(diffs, out=out[1:])
        out[1:] += np.int64(first)
    return out


def compressed_int_column_bytes(values: np.ndarray) -> int:
    """Bytes to store an integer column as RLE-of-deltas (for stats).

    This is what the column store's integer columns actually cost on disk:
    delta first, then RLE of the deltas (plus the run-value/length pairs).
    """
    first, diffs = delta_encode(values)
    run_values, run_lengths = rle_encode(diffs)
    return 8 + run_values.size * 8 + run_lengths.size * 8


class IntColumnCodec:
    """The codec the column store applies to integer columns.

    Pipeline: delta encode, then RLE the deltas.  A clustered
    ``household_code`` column (runs of equal codes -> deltas almost all 0)
    and a tiled ``hour`` column (deltas almost all 1) both collapse to a
    handful of runs.  Empty columns encode to an empty payload; deltas
    near the int64 bounds round-trip via modular arithmetic.
    """

    @staticmethod
    def encode(values: np.ndarray) -> dict[str, np.ndarray | int]:
        values = np.asarray(values)
        if values.ndim != 1:
            raise StorageError(
                f"IntColumnCodec expects a 1-D array, got shape {values.shape}"
            )
        if values.size == 0:
            return {
                "first": 0,
                "run_values": np.array([], dtype=np.int64),
                "run_lengths": np.array([], dtype=np.int64),
                "n": 0,
            }
        first, diffs = delta_encode(values)
        run_values, run_lengths = rle_encode(diffs)
        return {
            "first": first,
            "run_values": run_values.astype(np.int64),
            "run_lengths": run_lengths,
            "n": int(values.size),
        }

    @staticmethod
    def decode(payload: dict) -> np.ndarray:
        if int(payload["n"]) == 0:
            return np.array([], dtype=np.int64)
        diffs = rle_decode(payload["run_values"], payload["run_lengths"])
        out = delta_decode(payload["first"], diffs)
        if out.size != payload["n"]:
            raise StorageError(
                f"decoded {out.size} values, expected {payload['n']}"
            )
        return out


# Float measurement columns --------------------------------------------------

#: Decimal scales tried by :class:`FloatColumnCodec` (meter readings are
#: typically reported at 1-4 decimals; temperatures at 1-2).
_DECIMAL_SCALES = (1.0, 10.0, 100.0, 1000.0, 10000.0)

#: Narrowest-dtype ladder for scaled integers.
_INT_DTYPES = (np.int8, np.int16, np.int32, np.int64)


def _bits(values: np.ndarray) -> np.ndarray:
    """Raw bit patterns of a float64 array (uint64 view) for exactness checks."""
    return np.ascontiguousarray(values, dtype=np.float64).view(np.uint64)


class FloatColumnCodec:
    """Lossless compression for float64 measurement columns.

    Mode ladder, best-first:

    * ``scaled`` — the column is fixed-decimal data: for some scale
      ``s`` in :data:`_DECIMAL_SCALES`, ``rint(v * s) / s`` reproduces
      every value bit-exactly; store ``rint(v * s)`` in the narrowest
      int dtype that fits.  This is the normal case for real meter data
      (3-decimal kWh readings fit int16: 4x smaller than float64).
    * ``rle`` — long runs of bit-identical values (constant columns,
      repeated NaN payloads) when the runs actually pay for themselves.
    * ``zlib`` — DEFLATE over the raw bytes when it saves >= 10%.
    * ``raw`` — incompressible data is stored as-is, never inflated
      beyond the zlib attempt.

    Every mode reconstructs the original array bit-for-bit, including
    non-finite values (NaN bit patterns are preserved exactly via the
    uint64 view).
    """

    @staticmethod
    def encode(values: np.ndarray) -> dict:
        values = np.asarray(values, dtype=np.float64)
        if values.ndim != 1:
            raise StorageError(
                f"FloatColumnCodec expects a 1-D array, got shape {values.shape}"
            )
        n = int(values.size)
        if n == 0:
            return {"mode": "empty", "n": 0}
        bits = _bits(values)

        if np.isfinite(values).all():
            for scale in _DECIMAL_SCALES:
                with np.errstate(over="ignore", invalid="ignore"):
                    ints = np.rint(values * scale)
                if not (np.abs(ints) < 2.0**53).all():
                    continue
                # Verify through the *integer* cast, not the float ints:
                # storage collapses -0.0 to 0, so a column holding -0.0
                # must reject scaled mode to stay bit-exact.
                stored = ints.astype(np.int64)
                if not np.array_equal(_bits(stored / scale), bits):
                    continue
                lo, hi = int(stored.min()), int(stored.max())
                for dtype in _INT_DTYPES:
                    info = np.iinfo(dtype)
                    if info.min <= lo and hi <= info.max:
                        return {
                            "mode": "scaled",
                            "scale": float(scale),
                            "ints": stored.astype(dtype),
                            "n": n,
                        }

        run_values, run_lengths = rle_encode(bits)
        if run_values.size * 16 <= n * 8 * 0.75:
            return {
                "mode": "rle",
                "run_values": run_values,
                "run_lengths": run_lengths,
                "n": n,
            }

        blob = zlib.compress(values.tobytes(), 6)
        if len(blob) <= n * 8 * 0.9:
            return {
                "mode": "zlib",
                "blob": np.frombuffer(blob, dtype=np.uint8),
                "n": n,
            }
        return {"mode": "raw", "data": values.copy(), "n": n}

    @staticmethod
    def decode(payload: dict) -> np.ndarray:
        mode = str(payload["mode"])
        n = int(payload["n"])
        if mode == "empty":
            return np.array([], dtype=np.float64)
        if mode == "scaled":
            out = np.asarray(payload["ints"]).astype(np.float64) / float(
                payload["scale"]
            )
        elif mode == "rle":
            bits = rle_decode(
                np.asarray(payload["run_values"], dtype=np.uint64),
                payload["run_lengths"],
            )
            out = bits.view(np.float64)
        elif mode == "zlib":
            raw = zlib.decompress(np.asarray(payload["blob"]).tobytes())
            out = np.frombuffer(raw, dtype=np.float64).copy()
        elif mode == "raw":
            out = np.asarray(payload["data"], dtype=np.float64).copy()
        else:
            raise StorageError(f"unknown FloatColumnCodec mode {mode!r}")
        if out.size != n:
            raise StorageError(f"decoded {out.size} values, expected {n}")
        return out

    @staticmethod
    def encoded_nbytes(payload: dict) -> int:
        """Approximate on-disk bytes of an encoded payload (for stats)."""
        total = 0
        for value in payload.values():
            if isinstance(value, np.ndarray):
                total += value.nbytes
            else:
                total += 8
        return total


class StringDictCodec:
    """Dictionary encoding for string columns (consumer ids).

    The dictionary preserves *first-appearance order* so that decoding
    returns ids in their original ingest order — the property the column
    store's household dictionary relies on.
    """

    @staticmethod
    def encode(values: list[str]) -> tuple[np.ndarray, list[str]]:
        """Return (codes, dictionary); ``dictionary[codes[i]] == values[i]``."""
        index: dict[str, int] = {}
        codes = np.empty(len(values), dtype=np.int64)
        for i, value in enumerate(values):
            code = index.get(value)
            if code is None:
                code = len(index)
                index[value] = code
            codes[i] = code
        return codes, list(index)

    @staticmethod
    def decode(codes: np.ndarray, dictionary: list[str]) -> list[str]:
        """Inverse of :meth:`encode`."""
        codes = np.asarray(codes)
        if codes.size and (codes.min() < 0 or codes.max() >= len(dictionary)):
            raise StorageError("dictionary code out of range")
        return [dictionary[int(c)] for c in codes]
