"""Lightweight column compression codecs.

Column stores earn much of their I/O advantage from compressing columns
that real data keeps highly regular.  Two classic codecs are provided:

* **RLE** (run-length encoding) — ideal for the clustered
  ``household_code`` column, which is literally ``stride`` repeats of each
  code (compression ratio ~ stride);
* **FOR/delta** (frame-of-reference on deltas) — for the ``hour`` column,
  whose per-household sections are ``0, 1, 2, ...`` (constant delta runs
  collapse under RLE after differencing).

Both codecs are integer-exact and round-trip tested; the column store uses
them for its integer columns while float measurement columns stay raw (and
memory-mapped).
"""

from __future__ import annotations

import numpy as np

from repro.exceptions import StorageError


def rle_encode(values: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
    """Run-length encode an integer array into (run_values, run_lengths)."""
    values = np.asarray(values)
    if values.ndim != 1:
        raise StorageError(f"RLE expects a 1-D array, got shape {values.shape}")
    if values.size == 0:
        return values[:0].copy(), np.array([], dtype=np.int64)
    boundaries = np.flatnonzero(values[1:] != values[:-1]) + 1
    starts = np.concatenate([[0], boundaries])
    ends = np.concatenate([boundaries, [values.size]])
    return values[starts].copy(), (ends - starts).astype(np.int64)


def rle_decode(run_values: np.ndarray, run_lengths: np.ndarray) -> np.ndarray:
    """Inverse of :func:`rle_encode`."""
    run_values = np.asarray(run_values)
    run_lengths = np.asarray(run_lengths)
    if run_values.shape != run_lengths.shape:
        raise StorageError(
            f"run arrays disagree: {run_values.shape} vs {run_lengths.shape}"
        )
    if (run_lengths < 0).any():
        raise StorageError("negative run length")
    return np.repeat(run_values, run_lengths)


def delta_encode(values: np.ndarray) -> tuple[int, np.ndarray]:
    """Delta encoding: (first_value, diffs).  Integer-exact."""
    values = np.asarray(values)
    if values.ndim != 1 or values.size == 0:
        raise StorageError("delta encoding expects a non-empty 1-D array")
    return int(values[0]), np.diff(values)


def delta_decode(first: int, diffs: np.ndarray) -> np.ndarray:
    """Inverse of :func:`delta_encode`."""
    diffs = np.asarray(diffs)
    out = np.empty(diffs.size + 1, dtype=np.int64)
    out[0] = first
    np.cumsum(diffs, out=out[1:])
    out[1:] += first
    return out


def compressed_int_column_bytes(values: np.ndarray) -> int:
    """Bytes to store an integer column as RLE-of-deltas (for stats).

    This is what the column store's integer columns actually cost on disk:
    delta first, then RLE of the deltas (plus the run-value/length pairs).
    """
    first, diffs = delta_encode(values)
    run_values, run_lengths = rle_encode(diffs)
    return 8 + run_values.size * 8 + run_lengths.size * 8


class IntColumnCodec:
    """The codec the column store applies to integer columns.

    Pipeline: delta encode, then RLE the deltas.  A clustered
    ``household_code`` column (runs of equal codes -> deltas almost all 0)
    and a tiled ``hour`` column (deltas almost all 1) both collapse to a
    handful of runs.
    """

    @staticmethod
    def encode(values: np.ndarray) -> dict[str, np.ndarray | int]:
        first, diffs = delta_encode(values)
        run_values, run_lengths = rle_encode(diffs)
        return {
            "first": first,
            "run_values": run_values.astype(np.int64),
            "run_lengths": run_lengths,
            "n": int(values.size),
        }

    @staticmethod
    def decode(payload: dict) -> np.ndarray:
        diffs = rle_decode(payload["run_values"], payload["run_lengths"])
        out = delta_decode(payload["first"], diffs)
        if out.size != payload["n"]:
            raise StorageError(
                f"decoded {out.size} values, expected {payload['n']}"
            )
        return out
