"""A miniature main-memory column store — the "System C" analogue substrate.

The paper's System C is a commercial main-memory column store for time
series: tables are memory-mapped at load time (making loading almost free
and the first scan cheap), and all statistical operators had to be written
by hand in its procedural language.

This package mirrors that architecture across two storage generations:

* :mod:`repro.columnar.colstore` — **v1**: columns persisted as binary
  ``.npy`` files, opened with ``numpy.memmap``; household ids
  dictionary-encoded; per-block zone maps for scan pruning;
* :mod:`repro.columnar.partstore` — **v2**: date x consumer-range
  partitions, per-partition zone maps, lossless float/dictionary
  compression, append-only daily ingest with an operational state table,
  and budgeted partition-at-a-time scans;
* :mod:`repro.columnar.outofcore` — streaming task execution over v2
  (consumer-block sweeps, blocked all-pairs similarity), bit-identical
  to in-memory runs;
* :mod:`repro.columnar.operators` — the hand-written statistical operators
  (histogram, quantiles, regression, matrix multiply) built from scratch on
  the raw columns, never calling the reference kernels.
"""

from repro.columnar.colstore import ColumnStore, ColumnTable
from repro.columnar.partstore import (
    PartitionBatch,
    PartitionedStore,
    PartitionedTable,
    PartitionInfo,
    StateTable,
)

__all__ = [
    "ColumnStore",
    "ColumnTable",
    "PartitionBatch",
    "PartitionInfo",
    "PartitionedStore",
    "PartitionedTable",
    "StateTable",
]
