"""A miniature main-memory column store — the "System C" analogue substrate.

The paper's System C is a commercial main-memory column store for time
series: tables are memory-mapped at load time (making loading almost free
and the first scan cheap), and all statistical operators had to be written
by hand in its procedural language.

This package mirrors that architecture:

* :mod:`repro.columnar.colstore` — columns persisted as binary ``.npy``
  files, opened with ``numpy.memmap``; household ids dictionary-encoded;
  per-block zone maps for scan pruning;
* :mod:`repro.columnar.operators` — the hand-written statistical operators
  (histogram, quantiles, regression, matrix multiply) built from scratch on
  the raw columns, never calling the reference kernels.
"""

from repro.columnar.colstore import ColumnStore, ColumnTable

__all__ = ["ColumnStore", "ColumnTable"]
