"""Hand-written statistical operators for the System C engine.

The paper: "System C does not include a machine learning toolkit, and
therefore we implemented all the required statistical operators as
user-defined functions in the procedural language supported by it."

These are those UDFs.  They are written against raw arrays using only
primitive array operations (arithmetic, comparisons, sort, cumulative sums)
— never the library-style reference kernels in :mod:`repro.core` — and the
test suite proves they produce identical answers.  ``matmul_naive`` exists
because the paper measured System C's hand-rolled matrix multiply against
Matlab's BLAS and found it ~5x slower; the anecdote bench reproduces that.
"""

from __future__ import annotations

import numpy as np

from repro.exceptions import InsufficientDataError


def histogram_equi_width(
    values: np.ndarray, n_buckets: int
) -> tuple[np.ndarray, np.ndarray]:
    """Equi-width histogram via explicit bucket arithmetic.

    Returns ``(edges, counts)`` identical to the reference implementation:
    range = [min, max], final bucket closed on the right.
    """
    if values.size == 0:
        raise InsufficientDataError("histogram of empty column")
    lo = float(values.min())
    hi = float(values.max())
    if hi <= lo or (hi - lo) / n_buckets == 0.0:
        lo, hi = lo - 0.5, hi + 0.5
    width = (hi - lo) / n_buckets
    edges = lo + width * np.arange(n_buckets + 1)
    edges[-1] = hi  # avoid accumulation error at the top edge
    # Scaled-index bucketing: normalize by the full span, then scale by
    # the bucket count.  The truncated index can land one bucket off
    # within ~1 ULP of a boundary, so correct it against the actual edge
    # values (decrement first, then increment) — without this, values a
    # hair below an edge are counted in the wrong bucket and the counts
    # diverge from the reference.
    idx = (((values - lo) / (hi - lo)) * n_buckets).astype(np.int64)
    idx[idx == n_buckets] -= 1  # top edge belongs to the last bucket
    idx[values < edges[idx]] -= 1
    idx[(values >= edges[idx + 1]) & (idx != n_buckets - 1)] += 1
    counts = np.bincount(idx, minlength=n_buckets)
    return edges, counts


def percentile_sorted(sorted_values: np.ndarray, q: float) -> float:
    """Percentile with linear interpolation over pre-sorted input.

    Same contract as :func:`repro.core.stats.percentile_linear`, rewritten
    with explicit index arithmetic (no numpy.percentile).
    """
    n = sorted_values.size
    if n == 0:
        raise InsufficientDataError("percentile of empty column")
    if n == 1:
        return float(sorted_values[0])
    rank = (q / 100.0) * (n - 1)
    lo_idx = int(rank)
    frac = rank - lo_idx
    if lo_idx + 1 >= n:
        return float(sorted_values[-1])
    return float(
        sorted_values[lo_idx] + frac * (sorted_values[lo_idx + 1] - sorted_values[lo_idx])
    )


def group_percentiles_by_bin(
    bin_keys: np.ndarray,
    values: np.ndarray,
    lower_q: float,
    upper_q: float,
    min_bin_count: int,
) -> tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
    """Per-integer-bin percentiles: ``(bins, lower, upper, counts)``.

    One sort by (bin, value), then run-length segmentation — the way a
    column engine computes grouped order statistics without a hash table.
    """
    order = np.lexsort((values, bin_keys))
    sorted_bins = bin_keys[order]
    sorted_values = values[order]
    boundaries = np.flatnonzero(sorted_bins[1:] != sorted_bins[:-1]) + 1
    starts = np.concatenate([[0], boundaries])
    ends = np.concatenate([boundaries, [sorted_bins.size]])
    bins: list[int] = []
    lower: list[float] = []
    upper: list[float] = []
    counts: list[int] = []
    for s, e in zip(starts, ends):
        if e - s < min_bin_count:
            continue
        segment = sorted_values[s:e]  # already sorted within the bin
        bins.append(int(sorted_bins[s]))
        lower.append(percentile_sorted(segment, lower_q))
        upper.append(percentile_sorted(segment, upper_q))
        counts.append(int(e - s))
    return (
        np.asarray(bins, dtype=np.int64),
        np.asarray(lower),
        np.asarray(upper),
        np.asarray(counts, dtype=np.float64),
    )


def linear_regression_sums(
    x: np.ndarray, y: np.ndarray, weights: np.ndarray | None = None
) -> tuple[float, float, float]:
    """Weighted simple regression from explicit sums: (slope, intercept, sse)."""
    if x.size == 0:
        raise InsufficientDataError("regression over zero points")
    w = np.ones_like(x) if weights is None else weights
    sw = float(w.sum())
    sx = float((w * x).sum())
    sy = float((w * y).sum())
    sxx = float((w * x * x).sum())
    sxy = float((w * x * y).sum())
    syy = float((w * y * y).sum())
    if x.size == 1:
        return 0.0, sy / sw, 0.0
    varx = sxx - sx * sx / sw
    if varx < 1e-12:
        vary = syy - sy * sy / sw
        return 0.0, sy / sw, max(0.0, vary)
    slope = (sxy - sx * sy / sw) / varx
    intercept = (sy - slope * sx) / sw
    sse = max(0.0, (syy - sy * sy / sw) - slope * (sxy - sx * sy / sw))
    return slope, intercept, sse


def multiple_regression_normal_equations(
    design: np.ndarray, y: np.ndarray
) -> tuple[np.ndarray, float]:
    """Multiple regression via explicit normal equations + Gaussian elimination.

    Mirrors what a procedural UDF does: accumulate X'X and X'y, then solve
    with the hand-written :func:`~repro.core.stats.gaussian_elimination_solve`.
    """
    from repro.core.stats import gaussian_elimination_solve

    n, k = design.shape
    if n < k:
        raise InsufficientDataError(f"{n} rows for {k} coefficients")
    xtx = design.T @ design
    xty = design.T @ y
    try:
        coeffs = gaussian_elimination_solve(xtx, xty)
    except np.linalg.LinAlgError:
        coeffs = np.linalg.lstsq(design, y, rcond=None)[0]
    resid = y - design @ coeffs
    return coeffs, float((resid**2).sum())


def batched_gaussian_solve(a: np.ndarray, b: np.ndarray) -> np.ndarray:
    """Solve ``m`` independent k x k systems by Gaussian elimination.

    ``a`` is ``(m, k, k)``, ``b`` is ``(m, k)``; returns ``(m, k)``.
    Partial pivoting runs per system, vectorized across the batch — this is
    the column-engine idiom: the PAR task solves 24 small normal-equation
    systems per household, and batching them removes per-system overhead.
    Hand-written (no LAPACK ``solve``/``lstsq``), like the scalar version in
    :func:`repro.core.stats.gaussian_elimination_solve`.
    """
    a = np.array(a, dtype=np.float64, copy=True)
    b = np.array(b, dtype=np.float64, copy=True)
    m, k, k2 = a.shape
    if k != k2 or b.shape != (m, k):
        raise ValueError(f"incompatible shapes {a.shape} and {b.shape}")
    batch = np.arange(m)
    for col in range(k):
        # Partial pivoting, per system.
        pivot = col + np.abs(a[:, col:, col]).argmax(axis=1)
        if (np.abs(a[batch, pivot, col]) < 1e-12).any():
            raise np.linalg.LinAlgError("singular system in batch")
        swap = pivot != col
        if swap.any():
            rows = np.flatnonzero(swap)
            a[rows, col], a[rows, pivot[rows]] = (
                a[rows, pivot[rows]].copy(),
                a[rows, col].copy(),
            )
            b[rows, col], b[rows, pivot[rows]] = (
                b[rows, pivot[rows]].copy(),
                b[rows, col].copy(),
            )
        inv = 1.0 / a[:, col, col]
        if col + 1 < k:
            factors = a[:, col + 1 :, col] * inv[:, None]  # (m, k-col-1)
            a[:, col + 1 :, col:] -= factors[:, :, None] * a[:, None, col, col:]
            b[:, col + 1 :] -= factors * b[:, col, None]
    x = np.zeros((m, k))
    for row in range(k - 1, -1, -1):
        acc = (a[:, row, row + 1 :] * x[:, row + 1 :]).sum(axis=1)
        x[:, row] = (b[:, row] - acc) / a[:, row, row]
    return x


def dot_product_loop(x: np.ndarray, y: np.ndarray, block: int = 1024) -> float:
    """Blocked explicit dot product (no BLAS ``@``)."""
    total = 0.0
    for start in range(0, x.size, block):
        xs = x[start : start + block]
        ys = y[start : start + block]
        total += float((xs * ys).sum())
    return total


def matmul_naive(a: np.ndarray, b: np.ndarray) -> np.ndarray:
    """Triple-loop matrix multiply — the System C hand-rolled kernel.

    Deliberately row-by-row (the inner product uses explicit elementwise
    multiply + sum rather than BLAS) to reproduce the paper's anecdote that
    System C's hand-written operators lose to Matlab's optimized matmul.
    """
    n, k = a.shape
    k2, m = b.shape
    if k != k2:
        raise ValueError(f"shape mismatch: {a.shape} @ {b.shape}")
    out = np.zeros((n, m))
    bt = np.ascontiguousarray(b.T)
    for i in range(n):
        row = a[i]
        for j in range(m):
            out[i, j] = (row * bt[j]).sum()
    return out


def top_k_by_score(scores: np.ndarray, k: int, exclude: int) -> list[int]:
    """Indices of the k best scores (descending, ties by index), skipping one.

    The sort is explicit (argsort on (-score, index)) — the System C UDF's
    inner ranking step for similarity search.
    """
    order = np.lexsort((np.arange(scores.size), -scores))
    out: list[int] = []
    for idx in order:
        if idx == exclude:
            continue
        out.append(int(idx))
        if len(out) == k:
            break
    return out
