"""Columnar storage v2: a partitioned, compressed, appendable column store.

The v1 store (:mod:`repro.columnar.colstore`) memory-maps one whole-matrix
file per column with a single flat zone map, so every query pays for every
consumer-day even when it needs one tariff group for one month.  This
module rebuilds the storage layer in the shape the scalable systems
converge on — one compressed file per (consumer-range, date-range)
partition plus an incremental-ingestion state store:

* **Partitioning** — the (consumer x hour) matrix is tiled into
  ``consumers_per_part`` x ``days_per_part``-day blocks; each tile is one
  ``.npz`` file.  Scans that touch one consumer range for one month read
  one file, not the year.
* **Compression** — measurement columns go through
  :class:`~repro.columnar.compression.FloatColumnCodec` (decimal-scaled
  integers for fixed-precision meter data, RLE / zlib / raw fallbacks —
  always lossless to the bit); consumer ids are dictionary-encoded with
  :class:`~repro.columnar.compression.StringDictCodec`.  The row-position
  columns (``household_code``, ``hour``) of the v1 schema are implicit in
  the partition grid — the ultimate delta/RLE encoding — and are
  regenerated on demand by :meth:`PartitionBatch.rows`.
* **Zone maps & pruning** — every partition records per-column
  NaN-ignoring min/max plus a NaN flag; :meth:`PartitionedTable.scan`
  prunes partitions by consumer range, hour range, and value range before
  a byte is decoded.  The pruning contract: the scan yields a *superset*
  of the matching rows — exact on the consumer/hour rectangle (batches
  are sliced to it), approximate on value predicates (zone-map granularity
  = one partition; NaN-bearing partitions are never value-pruned).
* **Append & ingest state** — :meth:`PartitionedStore.append_days` adds
  new hour-blocks without rewriting existing partitions, and every
  ingest/append writes through the operational :class:`StateTable`
  (last-ingested day per meter), which incremental streaming and cache
  invalidation key off.
* **Out-of-core scans** — :meth:`PartitionedTable.scan` streams
  partition-at-a-time under an explicit ``memory_budget_bytes``; the
  :mod:`repro.columnar.outofcore` runner builds whole-task execution on
  top so the benchmark runs laptop-RAM-sized at 1M-consumer scale.

Query results are bit-identical between the v1 and v2 stores: the float
codecs are lossless and assembly reproduces the exact matrices the v1
memmap would have produced (``benchmarks/regress.py --storage`` gates it).
"""

from __future__ import annotations

import json
import os
import shutil
from dataclasses import dataclass, replace
from pathlib import Path
from typing import Iterator

import numpy as np

from repro.columnar.compression import FloatColumnCodec, StringDictCodec
from repro.exceptions import StorageError
from repro.resilience.crashpoints import crash_here
from repro.timeseries.calendar import HOURS_PER_DAY
from repro.timeseries.series import Dataset

#: Default partition tile: consumers per partition x days per partition.
DEFAULT_CONSUMERS_PER_PART = 256
DEFAULT_DAYS_PER_PART = 30

#: The measurement columns every readings table stores.
FLOAT_COLUMNS = ("consumption", "temperature")

_META_FILE = "table_v2.json"
_STATE_FILE = "state.npz"


def day_of_hour(hour: int) -> int:
    """Day index containing an hour index."""
    return hour // HOURS_PER_DAY


@dataclass(frozen=True)
class PartitionInfo:
    """One on-disk partition: its grid cell, file, zone map and sizes."""

    consumer_block: int
    hour_block: int
    consumer0: int
    n_consumers: int
    hour0: int
    n_hours: int
    file_name: str
    #: column -> (min, max, has_nan) over the partition's values.
    zones: dict[str, tuple[float, float, bool]]
    raw_bytes: int
    compressed_bytes: int

    @property
    def n_rows(self) -> int:
        """Rows (readings) stored in this partition."""
        return self.n_consumers * self.n_hours

    def overlaps(
        self, consumer_lo: int, consumer_hi: int, hour_lo: int, hour_hi: int
    ) -> bool:
        """Does this partition intersect the half-open query rectangle?"""
        return (
            self.consumer0 < consumer_hi
            and consumer_lo < self.consumer0 + self.n_consumers
            and self.hour0 < hour_hi
            and hour_lo < self.hour0 + self.n_hours
        )

    def survives_value_ranges(
        self, value_ranges: dict[str, tuple[float, float]]
    ) -> bool:
        """Zone-map check: can this partition contain a matching value?

        NaN-bearing partitions are never pruned (the NaN rule of
        :meth:`repro.columnar.colstore.ZoneMap.blocks_overlapping`); NaN
        query bounds are rejected.
        """
        for col, (lo, hi) in value_ranges.items():
            if np.isnan(lo) or np.isnan(hi):
                raise StorageError(
                    f"value range for {col!r} must not contain NaN"
                )
            zone = self.zones.get(col)
            if zone is None:
                continue  # no zone map: cannot prune
            zmin, zmax, has_nan = zone
            if has_nan:
                continue  # NaN values defeat value pruning
            if zmax < lo or zmin > hi:
                return False
        return True

    def to_json(self) -> dict:
        return {
            "consumer_block": self.consumer_block,
            "hour_block": self.hour_block,
            "consumer0": self.consumer0,
            "n_consumers": self.n_consumers,
            "hour0": self.hour0,
            "n_hours": self.n_hours,
            "file_name": self.file_name,
            "zones": {
                col: [zmin, zmax, bool(has_nan)]
                for col, (zmin, zmax, has_nan) in self.zones.items()
            },
            "raw_bytes": self.raw_bytes,
            "compressed_bytes": self.compressed_bytes,
        }

    @classmethod
    def from_json(cls, payload: dict) -> "PartitionInfo":
        return cls(
            consumer_block=int(payload["consumer_block"]),
            hour_block=int(payload["hour_block"]),
            consumer0=int(payload["consumer0"]),
            n_consumers=int(payload["n_consumers"]),
            hour0=int(payload["hour0"]),
            n_hours=int(payload["n_hours"]),
            file_name=str(payload["file_name"]),
            zones={
                col: (float(z[0]), float(z[1]), bool(z[2]))
                for col, z in payload["zones"].items()
            },
            raw_bytes=int(payload["raw_bytes"]),
            compressed_bytes=int(payload["compressed_bytes"]),
        )


@dataclass(frozen=True)
class PartitionBatch:
    """One decoded partition, sliced to the scan's consumer/hour rectangle.

    Float columns are ``(n_consumers, n_hours)`` matrices in clustered
    (consumer-major) order; ``consumer0``/``hour0`` give the batch's global
    origin and ``consumer_ids`` the decoded household ids.
    """

    consumer0: int
    hour0: int
    consumer_ids: list[str]
    columns: dict[str, np.ndarray]

    @property
    def n_consumers(self) -> int:
        return len(self.consumer_ids)

    @property
    def n_hours(self) -> int:
        first = next(iter(self.columns.values()))
        return int(first.shape[1])

    def nbytes(self) -> int:
        """Decoded in-memory size of this batch."""
        return sum(a.nbytes for a in self.columns.values())

    def rows(self) -> dict[str, np.ndarray]:
        """The batch as flat v1-schema columns (regenerating the implicit
        ``household_code`` and ``hour`` position columns)."""
        nc, nh = self.n_consumers, self.n_hours
        out = {
            "household_code": np.repeat(
                np.arange(self.consumer0, self.consumer0 + nc, dtype=np.int32),
                nh,
            ),
            "hour": np.tile(
                np.arange(self.hour0, self.hour0 + nh, dtype=np.int32), nc
            ),
        }
        for col, matrix in self.columns.items():
            out[col] = matrix.reshape(-1)
        return out


@dataclass
class ScanStats:
    """What the last scan cost: pruning effectiveness and peak memory."""

    partitions_total: int = 0
    partitions_scanned: int = 0
    rows_scanned: int = 0
    peak_batch_bytes: int = 0
    memory_budget_bytes: int | None = None

    @property
    def partitions_pruned(self) -> int:
        return self.partitions_total - self.partitions_scanned


def _fsync_dir(directory: Path) -> None:
    """Flush a directory entry so a rename inside it survives a crash."""
    fd = os.open(directory, os.O_RDONLY)
    try:
        os.fsync(fd)
    finally:
        os.close(fd)


def _atomic_write_bytes(path: Path, data: bytes) -> None:
    """Write-temp + fsync + rename + dir-fsync: all-or-nothing on disk."""
    tmp = path.with_name(path.name + ".tmp")
    with open(tmp, "wb") as handle:
        handle.write(data)
        handle.flush()
        os.fsync(handle.fileno())
    os.replace(tmp, path)
    _fsync_dir(path.parent)


class StateTable:
    """Operational ingest state: last-ingested day + epoch per meter.

    Stored columnar (one int64 per dictionary slot per column, -1 =
    never ingested) so a million-meter state table is a few MB, not a
    JSON blob.  Every ingest/append writes through it; the streaming and
    caching layers read it to know where each meter's data ends, and the
    exactly-once streaming sink reads ``epoch`` — the highest window
    epoch applied per meter — to decide whether a redelivered window is
    a replay (skip) or a genuine revision (overwrite).

    ``commit`` mirrors the table meta's commit counter; on open, a state
    file whose commit disagrees with the meta (a crash landed between
    the meta commit and the state write) is discarded and rebuilt from
    the meta — the meta is the authoritative commit point.
    """

    def __init__(
        self,
        last_day: np.ndarray,
        dictionary: list[str],
        epoch: np.ndarray | None = None,
        commit: int = 0,
    ) -> None:
        if last_day.shape != (len(dictionary),):
            raise StorageError(
                f"state table shape {last_day.shape} does not match "
                f"{len(dictionary)} meters"
            )
        self.last_day = last_day
        self.epoch = (
            epoch if epoch is not None
            else np.full(len(dictionary), -1, dtype=np.int64)
        )
        if self.epoch.shape != (len(dictionary),):
            raise StorageError(
                f"state epoch shape {self.epoch.shape} does not match "
                f"{len(dictionary)} meters"
            )
        self.commit = int(commit)
        self._dictionary = dictionary
        self._index: dict[str, int] | None = None

    def last_ingested_day(self, consumer_id: str) -> int:
        """Last day index ingested for a meter (-1 = never)."""
        return int(self.last_day[self._code(consumer_id)])

    def last_epoch(self, consumer_id: str) -> int:
        """Highest window epoch applied for a meter (-1 = none)."""
        return int(self.epoch[self._code(consumer_id)])

    def _code(self, consumer_id: str) -> int:
        if self._index is None:
            self._index = {v: i for i, v in enumerate(self._dictionary)}
        try:
            return self._index[consumer_id]
        except KeyError:
            raise StorageError(f"unknown household id {consumer_id!r}") from None

    def as_dict(self) -> dict[str, int]:
        """The full state as {consumer_id: last_day}."""
        return {
            cid: int(day) for cid, day in zip(self._dictionary, self.last_day)
        }

    def save(self, path: Path) -> None:
        """Persist atomically (temp + fsync + rename)."""
        import io

        buf = io.BytesIO()
        np.savez(
            buf,
            last_day=self.last_day,
            epoch=self.epoch,
            commit=np.int64(self.commit),
        )
        _atomic_write_bytes(path, buf.getvalue())

    @classmethod
    def load(cls, path: Path, dictionary: list[str]) -> "StateTable":
        """Load, tolerating pre-epoch files (epoch -1, commit 0)."""
        with np.load(path) as payload:
            last_day = payload["last_day"].copy()
            epoch = (
                payload["epoch"].copy() if "epoch" in payload.files else None
            )
            commit = (
                int(payload["commit"]) if "commit" in payload.files else 0
            )
        return cls(last_day, dictionary, epoch=epoch, commit=commit)


def _payload_to_npz(prefix: str, payload: dict, out: dict) -> None:
    """Flatten a codec payload into npz-compatible ``prefix__key`` arrays."""
    for key, value in payload.items():
        out[f"{prefix}__{key}"] = (
            value if isinstance(value, np.ndarray) else np.asarray(value)
        )


def _payload_from_npz(prefix: str, npz) -> dict:
    """Inverse of :func:`_payload_to_npz` for one column prefix."""
    payload = {}
    head = f"{prefix}__"
    for key in npz.files:
        if not key.startswith(head):
            continue
        value = npz[key]
        name = key[len(head):]
        if name in ("mode",):
            payload[name] = str(value)
        elif value.ndim == 0:
            payload[name] = value.item()
        else:
            payload[name] = value
    if not payload:
        raise StorageError(f"partition file has no column {prefix!r}")
    return payload


def _zone_of(values: np.ndarray) -> tuple[float, float, bool]:
    """(min, max, has_nan) over a partition's values, NaN-ignoring."""
    nan_mask = np.isnan(values)
    if nan_mask.all():
        return float("inf"), float("-inf"), True
    if nan_mask.any():
        return (
            float(np.nanmin(values)),
            float(np.nanmax(values)),
            True,
        )
    return float(values.min()), float(values.max()), False


class PartitionedTable:
    """An open v2 table: partition index + dictionary + ingest state."""

    def __init__(self, directory: Path, meta: dict) -> None:
        self.directory = directory
        self.name = meta["name"]
        self.dictionary: list[str] = list(meta["dictionary"])
        self.consumer_blocks: list[tuple[int, int]] = [
            (int(c0), int(nc)) for c0, nc in meta["consumer_blocks"]
        ]
        self.hour_blocks: list[tuple[int, int]] = [
            (int(h0), int(nh)) for h0, nh in meta["hour_blocks"]
        ]
        self.partitions: dict[tuple[int, int], PartitionInfo] = {
            tuple(int(x) for x in key.split(",")): PartitionInfo.from_json(p)
            for key, p in meta["partitions"].items()
        }
        self.columns: list[str] = list(meta["columns"])
        self._meta = meta
        self._dict_index: dict[str, int] | None = None
        self._state: StateTable | None = None
        #: Populated by every :meth:`scan`.
        self.last_scan_stats = ScanStats()
        #: Running max of decoded batch bytes across *all* scans on this
        #: handle (``last_scan_stats`` resets per scan); reset by callers
        #: that meter a whole multi-scan run.
        self.scan_peak_bytes = 0

    # Shape ----------------------------------------------------------------

    @property
    def n_households(self) -> int:
        return len(self.dictionary)

    @property
    def consumers_per_part(self) -> int:
        """Partition width on the consumer axis."""
        return int(self._meta["consumers_per_part"])

    @property
    def days_per_part(self) -> int:
        """Partition height in days on the time axis."""
        return int(self._meta["days_per_part"])

    @property
    def n_hours(self) -> int:
        if not self.hour_blocks:
            return 0
        h0, nh = self.hour_blocks[-1]
        return h0 + nh

    @property
    def n_days(self) -> int:
        """Whole or partial days covered (day of the last hour + 1)."""
        return 0 if self.n_hours == 0 else day_of_hour(self.n_hours - 1) + 1

    @property
    def n_rows(self) -> int:
        return self.n_households * self.n_hours

    @property
    def last_epoch(self) -> int:
        """Highest window epoch committed to this table (-1 = none).

        The exactly-once contract of the streaming sink: an append or
        overwrite carrying an epoch at or below this value has already
        been applied and is a crash-replay redelivery.
        """
        return int(self._meta.get("last_epoch", -1))

    @property
    def commit(self) -> int:
        """Commit counter of the table meta (0 for pre-epoch tables)."""
        return int(self._meta.get("commit", 0))

    def raw_bytes(self) -> int:
        """Uncompressed float64 measurement bytes the table represents."""
        return self.n_rows * 8 * len(self.columns)

    def compressed_bytes(self) -> int:
        """Actual on-disk bytes of all partition files."""
        return sum(
            (self.directory / p.file_name).stat().st_size
            for p in self.partitions.values()
        )

    # Dictionary -----------------------------------------------------------

    def decode(self, code: int) -> str:
        """Dictionary-decode a household code."""
        try:
            return self.dictionary[code]
        except IndexError:
            raise StorageError(f"code {code} outside dictionary") from None

    def encode(self, value: str) -> int:
        """Dictionary-encode a household id."""
        if self._dict_index is None:
            self._dict_index = {v: i for i, v in enumerate(self.dictionary)}
        try:
            return self._dict_index[value]
        except KeyError:
            raise StorageError(f"unknown household id {value!r}") from None

    # State ----------------------------------------------------------------

    def state(self) -> StateTable:
        """The operational ingest-state table (cached, self-healing).

        A state file that is missing, torn, or from a different commit
        than the meta (a crash landed between the meta commit and the
        state write) is rebuilt from the meta: the meta is the commit
        point, the state table a derived convenience view.
        """
        if self._state is None:
            path = self.directory / _STATE_FILE
            try:
                state = StateTable.load(path, self.dictionary)
            except (OSError, KeyError, ValueError, StorageError):
                state = None
            if state is None or state.commit != self.commit:
                state = self._rebuild_state()
                state.save(path)
            self._state = state
        return self._state

    def _rebuild_state(self) -> StateTable:
        """Derive the per-meter state from the (authoritative) meta."""
        n = self.n_households
        last_day = np.full(
            n, self.n_days - 1 if self.n_hours else -1, dtype=np.int64
        )
        epoch = np.full(n, self.last_epoch, dtype=np.int64)
        return StateTable(
            last_day, self.dictionary, epoch=epoch, commit=self.commit
        )

    # Reading --------------------------------------------------------------

    def read_partition(
        self, info: PartitionInfo, columns: list[str] | None = None
    ) -> dict[str, np.ndarray]:
        """Decode one partition's float columns into (nc, nh) matrices."""
        cols = list(columns) if columns is not None else list(self.columns)
        out = {}
        with np.load(self.directory / info.file_name) as npz:
            for col in cols:
                flat = FloatColumnCodec.decode(_payload_from_npz(col, npz))
                out[col] = flat.reshape(info.n_consumers, info.n_hours)
        return out

    def scan(
        self,
        columns: list[str] | None = None,
        consumer_range: tuple[int, int] | None = None,
        hour_range: tuple[int, int] | None = None,
        value_ranges: dict[str, tuple[float, float]] | None = None,
        memory_budget_bytes: int | None = None,
    ) -> Iterator[PartitionBatch]:
        """Stream partitions surviving pruning, one decoded batch at a time.

        ``consumer_range``/``hour_range`` are half-open global index ranges
        (predicate pushdown: batches are sliced exactly to the rectangle);
        ``value_ranges`` maps column -> inclusive (lo, hi) and prunes via
        per-partition zone maps only (callers still apply the exact
        predicate to the rows they receive).  With ``memory_budget_bytes``
        set, a partition whose decoded batch would exceed the budget
        raises :class:`StorageError` instead of silently blowing the
        memory envelope.  Pruning/peak statistics for the scan land in
        :attr:`last_scan_stats`.
        """
        cols = list(columns) if columns is not None else list(self.columns)
        unknown = [c for c in cols if c not in self.columns]
        if unknown:
            raise StorageError(
                f"table {self.name!r} has no columns {unknown}; "
                f"available: {self.columns}"
            )
        c_lo, c_hi = consumer_range or (0, self.n_households)
        h_lo, h_hi = hour_range or (0, self.n_hours)
        ranges = value_ranges or {}
        stats = ScanStats(
            partitions_total=len(self.partitions),
            memory_budget_bytes=memory_budget_bytes,
        )
        self.last_scan_stats = stats
        for key in sorted(self.partitions):
            info = self.partitions[key]
            if not info.overlaps(c_lo, c_hi, h_lo, h_hi):
                continue
            if not info.survives_value_ranges(ranges):
                continue
            batch_bytes = info.n_rows * 8 * len(cols)
            if (
                memory_budget_bytes is not None
                and batch_bytes > memory_budget_bytes
            ):
                raise StorageError(
                    f"partition {info.file_name} needs {batch_bytes} bytes "
                    f"decoded, over the {memory_budget_bytes}-byte budget; "
                    f"re-ingest with smaller partitions"
                )
            matrices = self.read_partition(info, cols)
            # Predicate pushdown: slice exactly to the query rectangle.
            r0 = max(c_lo, info.consumer0) - info.consumer0
            r1 = min(c_hi, info.consumer0 + info.n_consumers) - info.consumer0
            k0 = max(h_lo, info.hour0) - info.hour0
            k1 = min(h_hi, info.hour0 + info.n_hours) - info.hour0
            if (r0, r1, k0, k1) != (0, info.n_consumers, 0, info.n_hours):
                matrices = {c: m[r0:r1, k0:k1] for c, m in matrices.items()}
            consumer0 = info.consumer0 + r0
            batch = PartitionBatch(
                consumer0=consumer0,
                hour0=info.hour0 + k0,
                consumer_ids=self.dictionary[consumer0 : consumer0 + (r1 - r0)],
                columns=matrices,
            )
            stats.partitions_scanned += 1
            stats.rows_scanned += batch.n_consumers * batch.n_hours
            stats.peak_batch_bytes = max(stats.peak_batch_bytes, batch.nbytes())
            self.scan_peak_bytes = max(self.scan_peak_bytes, batch.nbytes())
            yield batch

    def read_matrices(
        self,
        consumer_range: tuple[int, int] | None = None,
        columns: list[str] | None = None,
        memory_budget_bytes: int | None = None,
    ) -> tuple[list[str], dict[str, np.ndarray]]:
        """Assemble full-width matrices for a consumer range.

        Concatenates the range's hour-blocks back into contiguous
        ``(nc, n_hours)`` matrices — bit-identical to what the v1 memmap
        store would serve for the same consumers.
        """
        cols = list(columns) if columns is not None else list(self.columns)
        c_lo, c_hi = consumer_range or (0, self.n_households)
        nc = c_hi - c_lo
        out = {
            col: np.empty((nc, self.n_hours), dtype=np.float64) for col in cols
        }
        for batch in self.scan(
            columns=cols,
            consumer_range=(c_lo, c_hi),
            memory_budget_bytes=memory_budget_bytes,
        ):
            r0 = batch.consumer0 - c_lo
            h0 = batch.hour0
            for col in cols:
                m = batch.columns[col]
                out[col][r0 : r0 + m.shape[0], h0 : h0 + m.shape[1]] = m
        return self.dictionary[c_lo:c_hi], out


class PartitionedStore:
    """A directory of partitioned v2 column tables."""

    def __init__(self, root: str | Path) -> None:
        self.root = Path(root)
        self.root.mkdir(parents=True, exist_ok=True)
        self._commit_listeners: list = []

    def on_commit(self, callback) -> None:
        """Register ``callback(name, commit)`` to run after every commit.

        Fired once per successful commit point — initial ingest, append,
        overwrite — *after* the meta and state writes land, with the
        table name and its new commit counter.  This is the dataset-
        version hook the serving plane uses to invalidate cached views
        and results the moment an ingest lands.  Idempotent replays that
        touch nothing (epoch redeliveries, fully-overlapping skips) do
        not fire.  Listeners must not raise: they run inline on the
        ingesting thread.
        """
        self._commit_listeners.append(callback)

    def _notify_commit(self, name: str, commit: int) -> None:
        for callback in self._commit_listeners:
            callback(name, commit)

    def _table_dir(self, name: str) -> Path:
        return self.root / name

    def list_tables(self) -> list[str]:
        """Names of v2 tables present in the store."""
        return sorted(
            p.name for p in self.root.iterdir() if (p / _META_FILE).exists()
        )

    # Ingest ----------------------------------------------------------------

    def ingest_dataset(
        self,
        dataset: Dataset,
        name: str = "readings",
        consumers_per_part: int = DEFAULT_CONSUMERS_PER_PART,
        days_per_part: int = DEFAULT_DAYS_PER_PART,
        epoch: int | None = None,
    ) -> PartitionedTable:
        """Write a dataset as a partitioned table and open it.

        The ingest is the write-through point for the operational state
        table: after it, every meter's last-ingested day equals the last
        day of ``dataset``.  Callers running under an ingest policy
        (:mod:`repro.ingest`) pass the already-cleaned dataset here, so
        quarantined meters simply never enter the dictionary or state.

        ``epoch`` (streaming sink) stamps the table's initial window
        epoch; the meta write is the commit point — a crash before it
        leaves no visible table, so a replayed ingest simply rewrites.
        """
        if consumers_per_part <= 0 or days_per_part <= 0:
            raise StorageError(
                f"partition tile must be positive, got "
                f"{consumers_per_part} consumers x {days_per_part} days"
            )
        directory = self._table_dir(name)
        if (directory / _META_FILE).exists():
            raise StorageError(f"table {name!r} already exists in {self.root}")
        directory.mkdir(parents=True, exist_ok=True)

        n, n_hours = dataset.consumption.shape
        codes, dictionary = StringDictCodec.encode(list(dataset.consumer_ids))
        if not np.array_equal(codes, np.arange(n)):
            raise StorageError("consumer ids must be unique")  # pragma: no cover

        consumer_blocks = _blocks(n, consumers_per_part)
        hour_blocks = _blocks(n_hours, days_per_part * HOURS_PER_DAY)
        matrices = {
            "consumption": dataset.consumption,
            "temperature": dataset.temperature,
        }
        partitions = _write_partitions(
            directory, matrices, consumer_blocks, hour_blocks, hour_block0=0
        )

        last_day = 0 if n_hours == 0 else day_of_hour(n_hours - 1)
        state = StateTable(
            np.full(n, last_day if n_hours else -1, dtype=np.int64),
            dictionary,
            epoch=np.full(
                n, epoch if epoch is not None else -1, dtype=np.int64
            ),
            commit=0,
        )
        state.save(directory / _STATE_FILE)

        meta = {
            "name": name,
            "version": 2,
            "dictionary": dictionary,
            "columns": list(FLOAT_COLUMNS),
            "consumers_per_part": int(consumers_per_part),
            "days_per_part": int(days_per_part),
            "consumer_blocks": [list(b) for b in consumer_blocks],
            "hour_blocks": [list(b) for b in hour_blocks],
            "partitions": {
                f"{ci},{hi}": info.to_json()
                for (ci, hi), info in partitions.items()
            },
            "commit": 0,
            "last_epoch": epoch if epoch is not None else -1,
        }
        crash_here("sink-append")
        _atomic_write_bytes(
            directory / _META_FILE, json.dumps(meta).encode()
        )
        self._notify_commit(name, 0)
        return self.open(name)

    def append_days(
        self,
        name: str,
        batch: Dataset,
        *,
        start_day: int | None = None,
        on_conflict: str = "error",
        epoch: int | None = None,
    ) -> PartitionedTable:
        """Append whole new days of readings for every meter (append-only).

        ``batch`` must cover exactly the table's consumer set, in
        dictionary order, with a whole number of days.  New hour-blocks
        are written as fresh partition files — existing partitions are
        immutable — and the state table advances to the new last day.

        ``start_day`` declares the global day index the batch starts at
        (``None`` = straight append at the current end).  Declaring it
        makes redelivery explicit instead of silently double-appending:
        a batch that starts below the table's next day *overlaps* days
        the state table already recorded, and ``on_conflict`` decides —
        ``"error"`` (default) raises naming the overlap, ``"skip"``
        drops the already-ingested days and appends only the genuinely
        new tail (an idempotent re-send).  A ``start_day`` beyond the
        next day would leave a hole and always raises.

        ``epoch`` is the exactly-once key of the streaming sink: when
        given, an append whose epoch is at or below the table's
        committed ``last_epoch`` is a crash-replay redelivery and
        returns without touching the table — *before* the overlap check,
        so a replayed ``on_conflict="error"`` append cannot spuriously
        raise.  The meta write is the atomic commit point; the state
        table is rewritten after it and self-heals if a crash lands in
        between.
        """
        if on_conflict not in ("error", "skip"):
            raise StorageError(
                f"on_conflict must be 'error' or 'skip', got {on_conflict!r}"
            )
        table = self.open(name)
        if list(batch.consumer_ids) != table.dictionary:
            raise StorageError(
                "append batch must cover exactly the table's consumer set "
                "in dictionary order"
            )
        n_new = batch.consumption.shape[1]
        if n_new == 0 or n_new % HOURS_PER_DAY != 0:
            raise StorageError(
                f"append batch must be a whole number of days, "
                f"got {n_new} hours"
            )
        if epoch is not None and epoch <= table.last_epoch:
            return table  # already committed: idempotent replay
        next_day = table.n_hours // HOURS_PER_DAY
        if start_day is not None and start_day != next_day:
            if start_day > next_day:
                raise StorageError(
                    f"append at day {start_day} would leave a gap: table "
                    f"{name!r} ends at day {next_day - 1} "
                    f"(next appendable day is {next_day})"
                )
            overlap_days = next_day - start_day
            batch_days = n_new // HOURS_PER_DAY
            if on_conflict == "error":
                raise StorageError(
                    f"append batch for days {start_day}..."
                    f"{start_day + batch_days - 1} overlaps "
                    f"{min(overlap_days, batch_days)} already-ingested "
                    f"days of table {name!r} (ingested through day "
                    f"{next_day - 1}); re-send with on_conflict='skip' "
                    f"to drop the duplicate days"
                )
            if overlap_days >= batch_days:
                return table  # whole batch already ingested: no-op
            skip_hours = overlap_days * HOURS_PER_DAY
            batch = Dataset(
                consumer_ids=list(batch.consumer_ids),
                consumption=batch.consumption[:, skip_hours:],
                temperature=batch.temperature[:, skip_hours:],
                name=batch.name,
            )
            n_new -= skip_hours
        directory = table.directory
        meta = dict(table._meta)  # noqa: SLF001 - store owns its tables
        hour0 = table.n_hours
        consumer_blocks = table.consumer_blocks
        days_per_part = int(meta["days_per_part"])
        new_hour_blocks = [
            (hour0 + h0, nh)
            for h0, nh in _blocks(n_new, days_per_part * HOURS_PER_DAY)
        ]
        matrices = {
            "consumption": batch.consumption,
            "temperature": batch.temperature,
        }
        partitions = _write_partitions(
            directory,
            matrices,
            consumer_blocks,
            new_hour_blocks,
            hour_block0=len(table.hour_blocks),
            matrix_hour0=hour0,
        )
        meta["hour_blocks"] = [
            list(b) for b in (*table.hour_blocks, *new_hour_blocks)
        ]
        all_partitions = dict(table.partitions)
        all_partitions.update(partitions)
        meta["partitions"] = {
            f"{ci},{hi}": info.to_json()
            for (ci, hi), info in all_partitions.items()
        }
        commit = table.commit + 1
        meta["commit"] = commit
        if epoch is not None:
            meta["last_epoch"] = epoch

        crash_here("sink-append")
        _atomic_write_bytes(
            directory / _META_FILE, json.dumps(meta).encode()
        )
        state = table.state()
        state.last_day[:] = day_of_hour(hour0 + n_new - 1)
        if epoch is not None:
            state.epoch[:] = epoch
        state.commit = commit
        state.save(directory / _STATE_FILE)
        self._notify_commit(name, commit)
        return self.open(name)

    def overwrite_days(
        self,
        name: str,
        batch: Dataset,
        *,
        start_day: int,
        epoch: int | None = None,
    ) -> PartitionedTable:
        """Replace already-ingested whole days for every meter in place.

        The explicit revision path of the streaming sink (an applied-late
        window re-emission): ``batch`` must cover exactly the table's
        consumer set and a whole-day range that is *entirely* ingested
        already — overwrite never extends a table; that is what
        :meth:`append_days` is for.

        Affected partitions are spliced and rewritten under *versioned*
        file names (``part_cXXXXX_hYYYYY_rCCCCCC.npz`` where ``C`` is the
        new commit number); the atomic meta write then flips the table to
        the new files in one step and the old files are unlinked last.  A
        crash before the meta commit leaves the table reading the old
        files (a replay rewrites the same versioned names); ``epoch``
        redeliveries at or below the committed ``last_epoch`` are
        skipped, exactly like :meth:`append_days`.
        """
        table = self.open(name)
        if list(batch.consumer_ids) != table.dictionary:
            raise StorageError(
                "overwrite batch must cover exactly the table's consumer "
                "set in dictionary order"
            )
        n_new = batch.consumption.shape[1]
        if n_new == 0 or n_new % HOURS_PER_DAY != 0:
            raise StorageError(
                f"overwrite batch must be a whole number of days, "
                f"got {n_new} hours"
            )
        end_day = start_day + n_new // HOURS_PER_DAY
        if start_day < 0 or end_day * HOURS_PER_DAY > table.n_hours:
            raise StorageError(
                f"overwrite range days {start_day}...{end_day - 1} is not "
                f"fully ingested in table {name!r} "
                f"(table covers days 0...{table.n_days - 1}); "
                "use append_days to extend a table"
            )
        if epoch is not None and epoch <= table.last_epoch:
            return table  # already committed: idempotent replay
        h_lo, h_hi = start_day * HOURS_PER_DAY, end_day * HOURS_PER_DAY
        commit = table.commit + 1
        matrices = {
            "consumption": batch.consumption,
            "temperature": batch.temperature,
        }

        updated: dict[tuple[int, int], PartitionInfo] = {}
        stale: list[str] = []
        for key in sorted(table.partitions):
            info = table.partitions[key]
            if not (info.hour0 < h_hi and h_lo < info.hour0 + info.n_hours):
                continue
            tiles = table.read_partition(info)
            a = max(h_lo, info.hour0)
            b = min(h_hi, info.hour0 + info.n_hours)
            for col in table.columns:
                tiles[col][:, a - info.hour0 : b - info.hour0] = matrices[col][
                    info.consumer0 : info.consumer0 + info.n_consumers,
                    a - h_lo : b - h_lo,
                ]
            file_name = (
                f"part_c{info.consumer_block:05d}"
                f"_h{info.hour_block:05d}_r{commit:06d}.npz"
            )
            zones, raw, compressed = _encode_partition_file(
                table.directory, file_name, tiles
            )
            updated[key] = replace(
                info,
                file_name=file_name,
                zones=zones,
                raw_bytes=raw,
                compressed_bytes=compressed,
            )
            stale.append(info.file_name)

        crash_here("sink-append")
        meta = dict(table._meta)  # noqa: SLF001 - store owns its tables
        all_partitions = dict(table.partitions)
        all_partitions.update(updated)
        meta["partitions"] = {
            f"{ci},{hi}": info.to_json()
            for (ci, hi), info in all_partitions.items()
        }
        meta["commit"] = commit
        if epoch is not None:
            meta["last_epoch"] = epoch
        _atomic_write_bytes(
            table.directory / _META_FILE, json.dumps(meta).encode()
        )
        state = table.state()
        if epoch is not None:
            state.epoch[:] = epoch
        state.commit = commit
        state.save(table.directory / _STATE_FILE)
        for file_name in stale:
            try:
                (table.directory / file_name).unlink()
            except OSError:  # pragma: no cover - best-effort cleanup
                pass
        self._notify_commit(name, commit)
        return self.open(name)

    # Open / drop ------------------------------------------------------------

    def open(self, name: str) -> PartitionedTable:
        """Open a table by reading its partition index (no data I/O)."""
        directory = self._table_dir(name)
        meta_path = directory / _META_FILE
        if not meta_path.exists():
            raise StorageError(f"no table {name!r} in {self.root}")
        return PartitionedTable(directory, json.loads(meta_path.read_text()))

    def drop(self, name: str) -> None:
        """Delete a table: partitions, state table, meta — all sidecars.

        Idempotent like the v1 store's drop: missing table dir is a no-op.
        """
        directory = self._table_dir(name)
        if not directory.exists():
            return
        shutil.rmtree(directory)


def _blocks(total: int, size: int) -> list[tuple[int, int]]:
    """Tile ``total`` items into (start, length) blocks of ``size``."""
    if total == 0:
        return []
    return [
        (start, min(size, total - start)) for start in range(0, total, size)
    ]


def _write_partitions(
    directory: Path,
    matrices: dict[str, np.ndarray],
    consumer_blocks: list[tuple[int, int]],
    hour_blocks: list[tuple[int, int]],
    hour_block0: int,
    matrix_hour0: int = 0,
) -> dict[tuple[int, int], PartitionInfo]:
    """Encode and write one partition file per grid tile.

    ``hour_blocks`` carry *global* hour origins; ``matrix_hour0`` maps them
    back to column indices of the in-memory ``matrices`` (non-zero when
    appending).  ``hour_block0`` is the global index of the first new hour
    block (appends continue the existing numbering).
    """
    partitions: dict[tuple[int, int], PartitionInfo] = {}
    for ci, (c0, nc) in enumerate(consumer_blocks):
        for hj, (h0, nh) in enumerate(hour_blocks):
            hi = hour_block0 + hj
            file_name = f"part_c{ci:05d}_h{hi:05d}.npz"
            local_h0 = h0 - matrix_hour0
            tiles = {
                col: matrix[c0 : c0 + nc, local_h0 : local_h0 + nh]
                for col, matrix in matrices.items()
            }
            zones, raw, compressed = _encode_partition_file(
                directory, file_name, tiles
            )
            partitions[(ci, hi)] = PartitionInfo(
                consumer_block=ci,
                hour_block=hi,
                consumer0=c0,
                n_consumers=nc,
                hour0=h0,
                n_hours=nh,
                file_name=file_name,
                zones=zones,
                raw_bytes=raw,
                compressed_bytes=compressed,
            )
    return partitions


def _encode_partition_file(
    directory: Path, file_name: str, tiles: dict[str, np.ndarray]
) -> tuple[dict[str, tuple[float, float, bool]], int, int]:
    """Encode one partition's column tiles into an ``.npz`` file.

    Returns ``(zones, raw_bytes, compressed_bytes)``.
    """
    arrays: dict[str, np.ndarray] = {}
    zones: dict[str, tuple[float, float, bool]] = {}
    raw = 0
    for col, tile in tiles.items():
        flat = np.ascontiguousarray(tile).reshape(-1)
        zones[col] = _zone_of(flat)
        raw += flat.nbytes
        _payload_to_npz(col, FloatColumnCodec.encode(flat), arrays)
    path = directory / file_name
    np.savez(path, **arrays)
    return zones, raw, path.stat().st_size
