"""Process-lifetime warm worker pool.

Every pooled entry point used to build a fresh ``ProcessPoolExecutor``
per call and tear it down before returning, so sub-second kernels paid
worker spawn (and, on spawn platforms, interpreter + import costs) on
every dispatch — the reason ``BENCH_kernels.json`` showed
``batched_parallel`` losing to serial batched everywhere.  This module
keeps ONE pool alive for the life of the process and leases it out:

* :meth:`WarmPool.lease` returns the cached pool when it is healthy,
  built by the same factory, and large enough for the request; otherwise
  it discards the old pool and builds a fresh one.  Comparing the
  factory *by identity* keeps test monkeypatching honest — patching
  ``executor._make_pool`` changes the factory object, so a lease under a
  patch can never return a pool the patch did not build.
* :meth:`WarmPool.invalidate` drops the cached reference after the
  resilience supervisor has terminated a broken pool, and
  :meth:`WarmPool.respawn` is handed to the supervisor as its
  ``pool_factory`` — so a ``BrokenProcessPool`` recovery *recycles* the
  warm pool (the replacement becomes the new warm pool) instead of
  leaking an orphan executor.
* :meth:`WarmPool.dispatch_overhead_s` measures the pool's no-op
  round-trip latency (cached per pool generation) — the measured input
  of the chunk-size cost model in :mod:`repro.cluster.costmodel`.

The pool is shut down at interpreter exit via ``atexit``; tests can call
:func:`reset_warm_pool` to force a cold start.
"""

from __future__ import annotations

import atexit
import threading
import time
from typing import Any, Callable

#: Timeout for one no-op probe; a pool that cannot answer in this long
#: is useless for sub-second kernels anyway.
_PROBE_TIMEOUT_S = 30.0


def _noop() -> None:
    """Worker-side no-op for round-trip probing (module-level: picklable)."""


class WarmPool:
    """A lazily built, reused-until-broken process pool."""

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._pool: Any = None
        self._workers = 0
        self._factory: Callable[[int], Any] | None = None
        self._generation = 0
        self._overhead_s: float | None = None
        atexit.register(self.shutdown)

    @staticmethod
    def _healthy(pool: Any) -> bool:
        """True when the executor can still accept submissions."""
        if pool is None:
            return False
        # ProcessPoolExecutor internals, read defensively: `_broken` is
        # falsy until a worker dies, `_shutdown_thread` truthy once
        # shutdown() ran.  An attribute-less fake pool counts as healthy.
        if getattr(pool, "_broken", False):
            return False
        if getattr(pool, "_shutdown_thread", False):
            return False
        return True

    def lease(self, n_workers: int, factory: Callable[[int], Any]) -> Any:
        """The warm pool, respawned first if unusable for this request.

        A cached pool is reused when it was built by this same
        ``factory`` object, has at least ``n_workers`` workers, and is
        healthy.  May return ``None`` when ``factory`` does (platform
        without process pools) — callers fall back to serial, exactly as
        with a per-call pool.
        """
        with self._lock:
            if (
                self._pool is not None
                and factory is self._factory
                and self._workers >= n_workers
                and self._healthy(self._pool)
            ):
                return self._pool
            return self._respawn_locked(n_workers, factory)

    def respawn(self, n_workers: int, factory: Callable[[int], Any]) -> Any:
        """Discard the cached pool and make its replacement the warm one.

        This is the supervisor's ``pool_factory`` under warm pooling:
        the pool built to recover from a crash is registered here, so it
        stays warm for subsequent dispatch calls instead of leaking.
        """
        with self._lock:
            return self._respawn_locked(n_workers, factory)

    def _respawn_locked(self, n_workers: int, factory: Callable[[int], Any]):
        self._discard_locked()
        pool = factory(n_workers)
        self._pool = pool
        self._workers = n_workers if pool is not None else 0
        self._factory = factory
        self._generation += 1
        self._overhead_s = None
        return pool

    def _discard_locked(self) -> None:
        pool, self._pool = self._pool, None
        self._workers = 0
        if pool is not None:
            try:
                pool.shutdown(wait=False, cancel_futures=True)
            except Exception:  # pragma: no cover - teardown is best-effort
                pass

    def invalidate(self, pool: Any = None) -> None:
        """Forget a pool the supervisor terminated (no double-shutdown).

        With no argument, drops whatever is cached.  With a pool, drops
        the cache only if it still *is* that pool — a replacement
        registered through :meth:`respawn` in the meantime stays warm.
        """
        with self._lock:
            if pool is not None and pool is not self._pool:
                return
            # The supervisor already terminated the workers; shutdown
            # here only reaps executor bookkeeping.
            self._discard_locked()

    def shutdown(self) -> None:
        """Tear the warm pool down (atexit, tests)."""
        with self._lock:
            self._discard_locked()
            self._factory = None
            self._overhead_s = None

    def worker_pids(self) -> list[int]:
        """PIDs of the current pool's worker processes (for leak tests)."""
        with self._lock:
            processes = getattr(self._pool, "_processes", None) or {}
            return list(processes.keys())

    @property
    def generation(self) -> int:
        """Bumped every respawn; overhead measurements cache against it."""
        with self._lock:
            return self._generation

    def dispatch_overhead_s(self) -> float | None:
        """Measured no-op round-trip through the pool, or None.

        The first probe also absorbs worker start-up (the pool is lazy),
        which is exactly the warm-up a persistent pool amortizes; the
        *minimum* of two probes is the steady-state dispatch cost the
        chunk-size model should price.  Cached until the next respawn.
        """
        with self._lock:
            pool = self._pool
            cached = self._overhead_s
        if pool is None or not self._healthy(pool):
            return None
        if cached is not None:
            return cached
        try:
            overhead = None
            for _ in range(2):
                tic = time.perf_counter()
                pool.submit(_noop).result(timeout=_PROBE_TIMEOUT_S)
                elapsed = time.perf_counter() - tic
                overhead = elapsed if overhead is None else min(overhead, elapsed)
        except Exception:
            return None
        with self._lock:
            if pool is self._pool:
                self._overhead_s = overhead
        return overhead


_warm_pool = WarmPool()


def get_warm_pool() -> WarmPool:
    """The process-wide warm pool singleton."""
    return _warm_pool


def reset_warm_pool() -> None:
    """Shut the singleton down so the next lease starts cold (tests)."""
    _warm_pool.shutdown()


__all__ = ["WarmPool", "get_warm_pool", "reset_warm_pool"]
