"""Zero-copy publication of dataset matrices to worker processes.

The benchmark's inputs are two dense ``(n_consumers, n_hours)`` float64
matrices (consumption and temperature).  Re-pickling them to every worker
would make data movement the dominant cost of small tasks — exactly the
bottleneck the related work (Liu & Nielsen's hybrid ICT solution) calls
out for per-consumer analytics at scale.  Instead the parent copies each
matrix once into a ``multiprocessing.shared_memory`` block and ships
workers only a tiny picklable :class:`MatrixHandle`; workers map the block
and build a read-only ndarray view over it — zero copies per task.

Where POSIX shared memory is unavailable (exotic platforms, locked-down
sandboxes) the publisher transparently degrades to pickling the array into
the handle itself — slower, never wrong.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterator

import numpy as np

try:  # pragma: no cover - import succeeds on every supported platform
    from multiprocessing import shared_memory as _shared_memory
except ImportError:  # pragma: no cover
    _shared_memory = None


def shared_memory_available() -> bool:
    """True when ``multiprocessing.shared_memory`` can be used here."""
    return _shared_memory is not None


def _attach_untracked(name: str):
    """Attach to a segment without registering it with the resource tracker.

    On Python < 3.13 every attach registers the segment, so worker
    processes that merely *read* a block would double-unregister against
    the owner's unlink and spam KeyError tracebacks from the tracker at
    shutdown.  Suppress registration for the duration of the attach; the
    owning process keeps its registration and unlinks.
    """
    try:
        from multiprocessing import resource_tracker

        original = resource_tracker.register

        def register(name, rtype):  # pragma: no cover - trivial shim
            if rtype != "shared_memory":
                original(name, rtype)

        resource_tracker.register = register
        try:
            return _shared_memory.SharedMemory(name=name)
        finally:
            resource_tracker.register = original
    except ImportError:  # pragma: no cover - tracker always exists on POSIX
        return _shared_memory.SharedMemory(name=name)


@dataclass(frozen=True)
class MatrixHandle:
    """A picklable reference to one published matrix.

    Either a shared-memory descriptor (``shm_name`` set, ``inline`` None)
    or the pickled-array fallback (``inline`` set).  Workers call
    :func:`attach_matrix` to turn a handle into an ndarray.
    """

    shape: tuple[int, ...]
    dtype: str
    shm_name: str | None = None
    inline: np.ndarray | None = field(default=None, repr=False)

    @property
    def uses_shared_memory(self) -> bool:
        """True when workers will map this matrix instead of unpickling it."""
        return self.shm_name is not None


#: Worker-side cache of attached segments: shm name -> (SharedMemory, array).
#: Keeping the SharedMemory object referenced keeps the mapping alive for
#: the ndarray views handed out; one attach serves every task the worker
#: runs against the same published dataset.
_attached: dict[str, tuple[object, np.ndarray]] = {}

#: Cap on cached attachments.  Workers under the warm pool live for the
#: whole process, so an unbounded cache would keep every dataset ever
#: published mapped (unlinked POSIX segments stay allocated while
#: mapped).  A worker task touches at most three segments (consumption,
#: temperature, result buffer), so a small cap never evicts a segment
#: the *current* task still reads — only mappings from finished tasks.
_ATTACHED_CACHE_MAX = 8


def _evict_stale_attachments() -> None:
    """Close oldest cached mappings once over the cap (insertion order)."""
    while len(_attached) >= _ATTACHED_CACHE_MAX:
        name = next(iter(_attached))
        shm, _ = _attached.pop(name)
        try:
            shm.close()
        except Exception:  # pragma: no cover - close is best-effort
            pass


def attach_matrix(handle: MatrixHandle, writable: bool = False) -> np.ndarray:
    """Resolve a handle into an ndarray view (worker side).

    The default view is read-only; ``writable=True`` is for result
    buffers the worker fills in place (it requires a shared-memory
    handle — an inline handle's writes could never reach the parent).
    """
    if handle.inline is not None:
        if writable:
            raise ValueError("inline handles cannot back a writable buffer")
        return handle.inline
    if handle.shm_name is None:
        raise ValueError("handle carries neither shared memory nor inline data")
    cached = _attached.get(handle.shm_name)
    if cached is None:
        if _shared_memory is None:  # pragma: no cover - guarded by publisher
            raise RuntimeError("shared memory unavailable but handle requires it")
        _evict_stale_attachments()
        shm = _attach_untracked(handle.shm_name)
        array = np.ndarray(
            handle.shape, dtype=np.dtype(handle.dtype), buffer=shm.buf
        )
        array.flags.writeable = False
        cached = (shm, array)
        _attached[handle.shm_name] = cached
    if writable:
        # Fresh view over the same mapping; the cached view stays
        # read-only so plain input attachments are never handed out hot.
        shm = cached[0]
        return np.ndarray(
            handle.shape, dtype=np.dtype(handle.dtype), buffer=shm.buf
        )
    return cached[1]


def _detach_all() -> None:
    """Drop the worker-side attachment cache (tests / pool teardown)."""
    for shm, _ in _attached.values():
        try:
            shm.close()
        except Exception:  # pragma: no cover - close is best-effort
            pass
    _attached.clear()


class MatrixPublisher:
    """Owns the shared-memory blocks for a set of published matrices.

    Use as a context manager; exiting closes and unlinks every block it
    created.  With ``use_shared_memory=False`` (or when the platform lacks
    it) handles carry the arrays inline and there is nothing to clean up.
    """

    def __init__(self, use_shared_memory: bool = True) -> None:
        self.use_shared_memory = use_shared_memory and shared_memory_available()
        self._blocks: list = []

    def publish(self, matrix: np.ndarray) -> MatrixHandle:
        """Copy one matrix into shared memory and return its handle."""
        matrix = np.ascontiguousarray(matrix, dtype=np.float64)
        if not self.use_shared_memory:
            return MatrixHandle(
                shape=matrix.shape, dtype=str(matrix.dtype), inline=matrix
            )
        shm = _shared_memory.SharedMemory(create=True, size=matrix.nbytes)
        self._blocks.append(shm)
        view = np.ndarray(matrix.shape, dtype=matrix.dtype, buffer=shm.buf)
        view[:] = matrix
        return MatrixHandle(
            shape=matrix.shape, dtype=str(matrix.dtype), shm_name=shm.name
        )

    def allocate(
        self, shape: tuple[int, ...]
    ) -> tuple[MatrixHandle | None, np.ndarray | None]:
        """A zero-filled float64 shared buffer for workers to write into.

        Returns the picklable handle plus the parent-side writable view
        (valid until :meth:`close`).  Returns ``(None, None)`` without
        shared memory — result buffers have no inline fallback, callers
        keep the pickled-return path instead.
        """
        if not self.use_shared_memory:
            return None, None
        n_bytes = int(np.prod(shape)) * np.dtype(np.float64).itemsize
        shm = _shared_memory.SharedMemory(create=True, size=max(1, n_bytes))
        self._blocks.append(shm)
        view = np.ndarray(shape, dtype=np.float64, buffer=shm.buf)
        view[:] = 0.0
        handle = MatrixHandle(
            shape=tuple(shape), dtype="float64", shm_name=shm.name
        )
        return handle, view

    def close(self) -> None:
        """Release every block this publisher created."""
        for shm in self._blocks:
            try:
                shm.close()
                shm.unlink()
            except FileNotFoundError:  # pragma: no cover - already gone
                pass
        self._blocks.clear()

    def __enter__(self) -> "MatrixPublisher":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()


@dataclass(frozen=True)
class DatasetHandles:
    """Handles for one published dataset: ids travel by pickle (tiny)."""

    consumer_ids: tuple[str, ...]
    consumption: MatrixHandle
    temperature: MatrixHandle


def publish_dataset(
    publisher: MatrixPublisher, dataset
) -> DatasetHandles:
    """Publish a :class:`~repro.timeseries.series.Dataset`'s matrices."""
    return DatasetHandles(
        consumer_ids=tuple(dataset.consumer_ids),
        consumption=publisher.publish(dataset.consumption),
        temperature=publisher.publish(dataset.temperature),
    )


def iter_chunks(n: int, n_chunks: int) -> Iterator[tuple[int, int]]:
    """Split ``range(n)`` into up to ``n_chunks`` contiguous near-even spans."""
    if n <= 0:
        return
    n_chunks = max(1, min(n_chunks, n))
    base, extra = divmod(n, n_chunks)
    lo = 0
    for i in range(n_chunks):
        hi = lo + base + (1 if i < extra else 0)
        yield lo, hi
        lo = hi
