"""Process-pool execution of the benchmark tasks.

The three per-consumer tasks (histogram, 3-line, PAR) fan out over
contiguous consumer chunks; top-k similarity fans out over fixed-size row
blocks.  Input matrices travel to workers through shared memory
(:mod:`repro.parallel.shm`), results come back by pickle (they are small:
models, not matrices).

Determinism contract: for a given dataset and spec, every ``n_jobs`` —
including the in-process serial path — produces *bit-identical* results.
Per-consumer kernels touch one row at a time, so distribution cannot
change them; similarity achieves it by making the fixed-size row block
(not the worker's share) the unit of computation, so the exact same BLAS
calls run no matter how blocks land on workers.

Degradation ladder: no ``multiprocessing.shared_memory`` -> matrices are
pickled to workers; process pool cannot be created at all -> the task runs
serially in-process.  Both fallbacks are silent and produce identical
results — ``n_jobs`` is a performance knob, never a correctness one.
"""

from __future__ import annotations

import os
from typing import Any, Callable, Sequence

import numpy as np

from repro.core.similarity import SIMILARITY_BLOCK_ROWS, Neighbours, top_k_similar
from repro.exceptions import DataError
from repro.parallel import kernels
from repro.parallel.shm import (
    MatrixHandle,
    MatrixPublisher,
    iter_chunks,
    publish_dataset,
)


def effective_n_jobs(n_jobs: int | None) -> int:
    """Resolve an ``n_jobs`` knob into a concrete worker count.

    ``None`` or ``0`` mean "all cores"; negative counts back from the core
    count (``-1`` = all cores, ``-2`` = all but one, joblib-style); any
    positive value is taken as-is.  Always at least 1.
    """
    cores = os.cpu_count() or 1
    if n_jobs is None or n_jobs == 0:
        return cores
    if n_jobs < 0:
        return max(1, cores + 1 + n_jobs)
    return n_jobs


def _make_pool(n_workers: int):
    """A process pool, or None when this platform cannot fork/spawn one."""
    try:
        from concurrent.futures import ProcessPoolExecutor

        return ProcessPoolExecutor(max_workers=n_workers)
    except (ImportError, NotImplementedError, OSError, PermissionError):
        return None


def parallel_map_consumers(
    kernel: Callable[..., Any],
    dataset,
    *,
    n_jobs: int | None = None,
    use_shared_memory: bool = True,
    **kernel_kwargs: Any,
) -> dict[str, Any]:
    """Apply a per-consumer kernel to every consumer, fanned over processes.

    ``kernel`` must be a module-level callable with signature
    ``kernel(consumption_row, temperature_row, **kernel_kwargs)`` (see
    :mod:`repro.parallel.kernels` for the reference set).  Returns
    ``{consumer_id: result}`` in dataset order, bit-identical to the
    serial loop for any ``n_jobs``.
    """
    n = dataset.n_consumers
    jobs = min(effective_n_jobs(n_jobs), n)
    if jobs <= 1:
        return {
            cid: kernel(
                dataset.consumption[i], dataset.temperature[i], **kernel_kwargs
            )
            for i, cid in enumerate(dataset.consumer_ids)
        }
    pool = _make_pool(jobs)
    if pool is None:
        return parallel_map_consumers(
            kernel, dataset, n_jobs=1, **kernel_kwargs
        )
    with pool, MatrixPublisher(use_shared_memory) as publisher:
        handles = publish_dataset(publisher, dataset)
        futures = [
            pool.submit(
                kernels.run_consumer_chunk, handles, kernel, lo, hi, kernel_kwargs
            )
            for lo, hi in iter_chunks(n, jobs)
        ]
        results: list[Any] = []
        for future in futures:  # submission order == consumer order
            results.extend(future.result())
    return dict(zip(dataset.consumer_ids, results))


def parallel_map_consumer_chunks(
    chunk_kernel: Callable[..., list],
    dataset,
    *,
    n_jobs: int | None = None,
    use_shared_memory: bool = True,
    **kernel_kwargs: Any,
) -> dict[str, Any]:
    """Apply a whole-matrix chunk kernel to consumer chunks, over processes.

    The chunk-granular twin of :func:`parallel_map_consumers` for the
    batched kernels (:mod:`repro.batched`): ``chunk_kernel`` must be a
    module-level callable with signature ``chunk_kernel(consumption_matrix,
    temperature_matrix, **kernel_kwargs) -> list[result]`` (one result
    per row).  Each worker runs it once on its contiguous consumer slice;
    with one worker (or no pool) it runs once in-process on the whole
    matrix.  Returns ``{consumer_id: result}`` in dataset order — because
    the batched kernels treat consumers independently, the results do not
    depend on how the matrix is chunked.
    """
    n = dataset.n_consumers
    jobs = min(effective_n_jobs(n_jobs), n)
    if jobs <= 1:
        results = chunk_kernel(
            dataset.consumption, dataset.temperature, **kernel_kwargs
        )
        return dict(zip(dataset.consumer_ids, results))
    pool = _make_pool(jobs)
    if pool is None:
        return parallel_map_consumer_chunks(
            chunk_kernel, dataset, n_jobs=1, **kernel_kwargs
        )
    with pool, MatrixPublisher(use_shared_memory) as publisher:
        handles = publish_dataset(publisher, dataset)
        futures = [
            pool.submit(
                kernels.run_matrix_chunk, handles, chunk_kernel, lo, hi, kernel_kwargs
            )
            for lo, hi in iter_chunks(n, jobs)
        ]
        results: list[Any] = []
        for future in futures:  # submission order == consumer order
            results.extend(future.result())
    return dict(zip(dataset.consumer_ids, results))


def parallel_similarity(
    matrix: np.ndarray,
    ids: Sequence[str],
    k: int = 10,
    *,
    n_jobs: int | None = None,
    block_rows: int = SIMILARITY_BLOCK_ROWS,
    use_shared_memory: bool = True,
) -> dict[str, Neighbours]:
    """Top-k cosine similarity over blocked row ranges, process-parallel.

    ``block_rows`` is the unit of computation, not the per-worker share:
    the same blocks are computed whatever ``n_jobs`` is, only their
    placement changes — which is what keeps every worker count
    bit-identical to the serial reference (:func:`top_k_similar` computes
    the identical blocks in-process when ``block_rows`` matches its
    default).
    """
    matrix = np.asarray(matrix, dtype=np.float64)
    if matrix.ndim != 2 or matrix.shape[0] != len(ids):
        raise DataError(
            f"matrix shape {matrix.shape} does not match {len(ids)} ids"
        )
    if block_rows < 1:
        raise ValueError(f"block_rows must be >= 1, got {block_rows}")
    n = len(ids)
    blocks = [
        (lo, min(n, lo + block_rows)) for lo in range(0, n, block_rows)
    ]
    jobs = min(effective_n_jobs(n_jobs), len(blocks))
    if jobs <= 1:
        return _serial_similarity(matrix, list(ids), k, block_rows)
    pool = _make_pool(jobs)
    if pool is None:
        return _serial_similarity(matrix, list(ids), k, block_rows)
    with pool, MatrixPublisher(use_shared_memory) as publisher:
        handle = publisher.publish(matrix)
        # Contiguous runs of blocks per worker: preserves each worker's
        # sequential access pattern over the shared matrix.
        futures = [
            pool.submit(
                kernels.run_similarity_blocks, handle, blocks[b_lo:b_hi], k
            )
            for b_lo, b_hi in iter_chunks(len(blocks), jobs)
        ]
        by_row: dict[int, list[tuple[int, float]]] = {}
        for future in futures:
            for row, neighbours in future.result():
                by_row[row] = neighbours
    return {
        ids[row]: [(ids[j], score) for j, score in by_row[row]]
        for row in range(n)
    }


def _serial_similarity(
    matrix: np.ndarray, ids: list[str], k: int, block_rows: int
) -> dict[str, Neighbours]:
    """In-process blocked similarity (the n_jobs=1 / no-pool path)."""
    if block_rows == SIMILARITY_BLOCK_ROWS:
        return top_k_similar(matrix, ids, k)
    out: dict[str, Neighbours] = {}
    for (row, neighbours) in kernels.run_similarity_blocks(
        MatrixHandle(shape=matrix.shape, dtype=str(matrix.dtype), inline=matrix),
        [(lo, min(len(ids), lo + block_rows)) for lo in range(0, len(ids), block_rows)],
        k,
    ):
        out[ids[row]] = [(ids[j], score) for j, score in neighbours]
    return out


def parallel_map_items(
    fn: Callable[[list], list],
    items: Sequence,
    *,
    n_jobs: int | None = None,
) -> list:
    """Generic ordered fan-out: apply a chunk function to slices of items.

    ``fn`` takes a list slice and returns a list of the same length; the
    concatenated results preserve item order.  Used for work that is not
    matrix-shaped (e.g. parsing per-consumer CSV files in
    :func:`repro.io.csvio.read_partitioned`).  Falls back to one
    in-process call when pools are unavailable or pointless.
    """
    items = list(items)
    jobs = min(effective_n_jobs(n_jobs), len(items)) if items else 1
    if jobs <= 1:
        return fn(items)
    pool = _make_pool(jobs)
    if pool is None:
        return fn(items)
    with pool:
        futures = [
            pool.submit(fn, items[lo:hi]) for lo, hi in iter_chunks(len(items), jobs)
        ]
        out: list = []
        for future in futures:
            out.extend(future.result())
    return out
