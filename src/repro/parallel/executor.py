"""Process-pool execution of the benchmark tasks.

The three per-consumer tasks (histogram, 3-line, PAR) fan out over
contiguous consumer chunks; top-k similarity fans out over fixed-size row
blocks.  Input matrices travel to workers through shared memory
(:mod:`repro.parallel.shm`).  Batched chunk results come back through a
shared-memory result buffer (:mod:`repro.parallel.results`) when a
lossless codec exists for the task; everything else returns by pickle.

Dispatch economics: pools are *warm* — one process-lifetime
``ProcessPoolExecutor`` leased from :mod:`repro.parallel.warmpool` and
reused across calls, so sub-second kernels stop paying worker spawn per
dispatch.  Chunk counts come from the measured cost model
(:class:`repro.cluster.costmodel.DispatchCostModel`): the warm pool's
no-op round-trip prices a dispatch, serial runs of the same task label
price the compute, and fan-outs whose overhead would dominate run
serially in-process instead.

Determinism contract: for a given dataset and spec, every ``n_jobs`` —
including the in-process serial path — produces *bit-identical* results.
Per-consumer kernels touch one row at a time, so distribution cannot
change them; similarity achieves it by making the fixed-size row block
(not the worker's share) the unit of computation, so the exact same BLAS
calls run no matter how blocks land on workers.

Fault tolerance: every pooled fan-out runs under the supervisor of
:mod:`repro.resilience.supervisor` — worker crashes and chunk timeouts
respawn the pool and re-run only the incomplete chunks, governed by an
:class:`~repro.resilience.policy.ExecutionPolicy` (retry budget,
timeout, backoff, optional fault injection).  Since retried chunks run
the same deterministic kernels on the same slices, the determinism
contract extends through crashes.  With ``policy.on_error ==
"quarantine"`` a per-consumer ``DataError`` becomes a
:class:`~repro.resilience.report.QuarantineRecord` in the execution
report instead of killing the batch.

Degradation ladder: no ``multiprocessing.shared_memory`` -> matrices are
pickled to workers; process pool cannot be created at all -> the task runs
serially in-process with a ``RuntimeWarning`` naming the reason.  Both
fallbacks produce identical results — ``n_jobs`` is a performance knob,
never a correctness one.
"""

from __future__ import annotations

import os
import time
import warnings
from typing import Any, Callable, Sequence

import numpy as np

from repro.cluster.costmodel import DispatchCostModel, get_kernel_cost_tracker
from repro.core.similarity import SIMILARITY_BLOCK_ROWS, Neighbours, top_k_similar
from repro.exceptions import DataError
from repro.parallel import kernels
from repro.parallel.results import codec_for
from repro.parallel.shm import (
    MatrixHandle,
    MatrixPublisher,
    iter_chunks,
    publish_dataset,
)
from repro.parallel.warmpool import get_warm_pool
from repro.resilience import worker as resilience_worker
from repro.resilience.policy import ExecutionPolicy, get_default_policy
from repro.resilience.report import ExecutionReport, QuarantineRecord
from repro.resilience.supervisor import supervised_map
from repro.resilience.worker import QuarantinedRow


def effective_n_jobs(n_jobs: int | None) -> int:
    """Resolve an ``n_jobs`` knob into a concrete worker count.

    ``None`` or ``0`` mean "all cores"; negative counts back from the core
    count (``-1`` = all cores, ``-2`` = all but one, joblib-style); any
    positive value is taken as-is.  Always at least 1.
    """
    cores = os.cpu_count() or 1
    if n_jobs is None or n_jobs == 0:
        return cores
    if n_jobs < 0:
        return max(1, cores + 1 + n_jobs)
    return n_jobs


#: Why the last ``_make_pool`` call returned None (for the fallback warning).
_last_pool_error: str | None = None


def _make_pool(n_workers: int):
    """A process pool, or None when this platform cannot fork/spawn one."""
    global _last_pool_error
    try:
        from concurrent.futures import ProcessPoolExecutor

        pool = ProcessPoolExecutor(max_workers=n_workers)
        _last_pool_error = None
        return pool
    except (ImportError, NotImplementedError, OSError, PermissionError) as exc:
        _last_pool_error = f"{type(exc).__name__}: {exc}"
        return None


def _lease_pool(jobs: int):
    """Lease the process-lifetime warm pool at this worker count.

    ``_make_pool`` is resolved through the module global at call time so
    monkeypatched factories (tests) take effect; the warm pool compares
    the factory by identity and never reuses a pool a different factory
    built.
    """
    return get_warm_pool().lease(jobs, _make_pool)


def _supervision_kwargs(jobs: int) -> dict[str, Any]:
    """Warm-pool supervision wiring shared by every pooled entry point.

    The supervisor does not own a warm pool (healthy pools outlive the
    call), reports terminated pools so the warm cache drops them, and
    respawns replacements *through* the warm pool so recovery from a
    crash leaves the new pool warm rather than leaking it.
    """
    warm = get_warm_pool()
    return {
        "owns_pool": False,
        "on_pool_failure": warm.invalidate,
        "pool_factory": lambda: warm.respawn(jobs, _make_pool),
    }


def _warn_serial_fallback(jobs: int) -> None:
    """One warning naming why ``n_jobs`` was ignored (satellite fix)."""
    reason = _last_pool_error or "pool creation returned no executor"
    warnings.warn(
        f"process pool unavailable ({reason}); "
        f"running serially in-process, n_jobs={jobs} ignored",
        RuntimeWarning,
        stacklevel=3,
    )


def _finalize_consumer_results(
    consumer_ids: Sequence[str],
    results: list[Any],
    task_label: str,
    report: ExecutionReport | None,
) -> dict[str, Any]:
    """Map row results to consumer ids, extracting quarantine sentinels."""
    out: dict[str, Any] = {}
    records: list[QuarantineRecord] = []
    for cid, result in zip(consumer_ids, results):
        if isinstance(result, QuarantinedRow):
            records.append(
                QuarantineRecord(cid, task_label, result.error_type, result.message)
            )
        else:
            out[cid] = result
    if records:
        if report is not None:
            for record in records:
                report.quarantine(record)
        else:
            # No report to carry the records: don't lose them silently.
            warnings.warn(
                f"{task_label}: quarantined {len(records)} consumer(s): "
                + "; ".join(str(r) for r in records),
                RuntimeWarning,
                stacklevel=3,
            )
    return out


def parallel_map_consumers(
    kernel: Callable[..., Any],
    dataset,
    *,
    n_jobs: int | None = None,
    use_shared_memory: bool = True,
    policy: ExecutionPolicy | None = None,
    report: ExecutionReport | None = None,
    task_label: str | None = None,
    **kernel_kwargs: Any,
) -> dict[str, Any]:
    """Apply a per-consumer kernel to every consumer, fanned over processes.

    ``kernel`` must be a module-level callable with signature
    ``kernel(consumption_row, temperature_row, **kernel_kwargs)`` (see
    :mod:`repro.parallel.kernels` for the reference set).  Returns
    ``{consumer_id: result}`` in dataset order, bit-identical to the
    serial loop for any ``n_jobs`` — crashes and retries included.
    """
    policy = policy or get_default_policy()
    label = task_label or getattr(kernel, "__name__", "consumers")
    n = dataset.n_consumers
    jobs = min(effective_n_jobs(n_jobs), n)
    if jobs <= 1:
        if policy.quarantine:
            results = resilience_worker.guarded_rows(
                kernel, dataset.consumption, dataset.temperature, kernel_kwargs
            )
            return _finalize_consumer_results(
                dataset.consumer_ids, results, label, report
            )
        return {
            cid: kernel(
                dataset.consumption[i], dataset.temperature[i], **kernel_kwargs
            )
            for i, cid in enumerate(dataset.consumer_ids)
        }
    pool = _lease_pool(jobs)
    if pool is None:
        _warn_serial_fallback(jobs)
        return parallel_map_consumers(
            kernel,
            dataset,
            n_jobs=1,
            use_shared_memory=use_shared_memory,
            policy=policy,
            report=report,
            task_label=task_label,
            **kernel_kwargs,
        )
    entry = (
        resilience_worker.run_consumer_chunk_quarantined
        if policy.quarantine
        else kernels.run_consumer_chunk
    )
    with MatrixPublisher(use_shared_memory) as publisher:
        handles = publish_dataset(publisher, dataset)
        entries = [
            (entry, (handles, kernel, lo, hi, kernel_kwargs))
            for lo, hi in iter_chunks(n, jobs)
        ]
        chunk_results = supervised_map(
            entries,
            pool=pool,
            policy=policy,
            report=report,
            label=label,
            **_supervision_kwargs(jobs),
        )
    results = [r for chunk in chunk_results for r in chunk]
    return _finalize_consumer_results(dataset.consumer_ids, results, label, report)


def parallel_map_consumer_chunks(
    chunk_kernel: Callable[..., list],
    dataset,
    *,
    n_jobs: int | None = None,
    use_shared_memory: bool = True,
    policy: ExecutionPolicy | None = None,
    report: ExecutionReport | None = None,
    task_label: str | None = None,
    **kernel_kwargs: Any,
) -> dict[str, Any]:
    """Apply a whole-matrix chunk kernel to consumer chunks, over processes.

    The chunk-granular twin of :func:`parallel_map_consumers` for the
    batched kernels (:mod:`repro.batched`): ``chunk_kernel`` must be a
    module-level callable with signature ``chunk_kernel(consumption_matrix,
    temperature_matrix, **kernel_kwargs) -> list[result]`` (one result
    per row).  Each worker runs it once on its contiguous consumer slice;
    with one worker (or no pool) it runs once in-process on the whole
    matrix.  Returns ``{consumer_id: result}`` in dataset order — because
    the batched kernels treat consumers independently, the results do not
    depend on how the matrix is chunked.  Under quarantine mode a
    ``DataError`` from the kernel triggers recursive bisection down to the
    poisoned rows (valid for the same chunking-invariance reason).
    """
    policy = policy or get_default_policy()
    label = task_label or getattr(chunk_kernel, "__name__", "consumer_chunks")
    n = dataset.n_consumers
    jobs = min(effective_n_jobs(n_jobs), n)
    if jobs <= 1:
        if policy.quarantine:
            results = resilience_worker.guarded_matrix(
                chunk_kernel,
                dataset.consumption,
                dataset.temperature,
                kernel_kwargs,
            )
            return _finalize_consumer_results(
                dataset.consumer_ids, results, label, report
            )
        tic = time.perf_counter()
        results = chunk_kernel(
            dataset.consumption, dataset.temperature, **kernel_kwargs
        )
        get_kernel_cost_tracker().observe(label, time.perf_counter() - tic, n)
        return dict(zip(dataset.consumer_ids, results))
    pool = _lease_pool(jobs)
    if pool is None:
        _warn_serial_fallback(jobs)
        return parallel_map_consumer_chunks(
            chunk_kernel,
            dataset,
            n_jobs=1,
            use_shared_memory=use_shared_memory,
            policy=policy,
            report=report,
            task_label=task_label,
            **kernel_kwargs,
        )
    n_chunks = _measured_chunk_count(label, n, jobs)
    if n_chunks < 2:
        # The measured cost model priced dispatch above the compute it
        # would parallelize: run in-process, silently (this is the model
        # working, not a degradation).
        return parallel_map_consumer_chunks(
            chunk_kernel,
            dataset,
            n_jobs=1,
            use_shared_memory=use_shared_memory,
            policy=policy,
            report=report,
            task_label=task_label,
            **kernel_kwargs,
        )
    entry = (
        resilience_worker.run_matrix_chunk_quarantined
        if policy.quarantine
        else kernels.run_matrix_chunk
    )
    with MatrixPublisher(use_shared_memory) as publisher:
        handles = publish_dataset(publisher, dataset)
        codec = None
        result_view = None
        if not policy.quarantine and handles.consumption.uses_shared_memory:
            codec = codec_for(label, kernel_kwargs)
            if codec is not None:
                result_handle, result_view = publisher.allocate(
                    (n, codec.width())
                )
                if result_handle is None:
                    codec = None
        if codec is not None:
            entries = [
                (
                    kernels.run_matrix_chunk_packed,
                    (handles, result_handle, codec, chunk_kernel, lo, hi,
                     kernel_kwargs),
                )
                for lo, hi in iter_chunks(n, n_chunks)
            ]
        else:
            entries = [
                (entry, (handles, chunk_kernel, lo, hi, kernel_kwargs))
                for lo, hi in iter_chunks(n, n_chunks)
            ]
        chunk_results = supervised_map(
            entries,
            pool=pool,
            policy=policy,
            report=report,
            label=label,
            **_supervision_kwargs(jobs),
        )
        if codec is not None:
            # Workers wrote their disjoint row spans; one decode pass
            # replaces n pickled model lists.
            results = codec.decode(result_view)
        else:
            results = [r for chunk in chunk_results for r in chunk]
    return _finalize_consumer_results(dataset.consumer_ids, results, label, report)


def _measured_chunk_count(label: str, n_items: int, jobs: int) -> int:
    """Chunk count from the measured dispatch cost model.

    Combines the warm pool's no-op round-trip with the kernel cost
    tracker's per-item estimate (primed by serial runs of the same
    label).  Without either measurement the model abstains and the
    historical one-chunk-per-worker split stands.
    """
    estimate = get_kernel_cost_tracker().estimate_s_per_item(label)
    if estimate is None:
        return jobs
    overhead = get_warm_pool().dispatch_overhead_s()
    if overhead is None:
        return jobs
    model = DispatchCostModel(dispatch_overhead_s=overhead)
    return model.chunk_count(n_items, jobs, estimate * n_items)


def parallel_similarity(
    matrix: np.ndarray,
    ids: Sequence[str],
    k: int = 10,
    *,
    n_jobs: int | None = None,
    block_rows: int = SIMILARITY_BLOCK_ROWS,
    use_shared_memory: bool = True,
    policy: ExecutionPolicy | None = None,
    report: ExecutionReport | None = None,
    task_label: str | None = None,
) -> dict[str, Neighbours]:
    """Top-k cosine similarity over blocked row ranges, process-parallel.

    ``block_rows`` is the unit of computation, not the per-worker share:
    the same blocks are computed whatever ``n_jobs`` is, only their
    placement changes — which is what keeps every worker count
    bit-identical to the serial reference (:func:`top_k_similar` computes
    the identical blocks in-process when ``block_rows`` matches its
    default).  Quarantine does not apply here (similarity is all-pairs,
    not per-consumer); crashes and timeouts retry like the other entry
    points.
    """
    matrix = np.asarray(matrix, dtype=np.float64)
    if matrix.ndim != 2 or matrix.shape[0] != len(ids):
        raise DataError(
            f"matrix shape {matrix.shape} does not match {len(ids)} ids"
        )
    if block_rows < 1:
        raise ValueError(f"block_rows must be >= 1, got {block_rows}")
    policy = policy or get_default_policy()
    label = task_label or "similarity"
    n = len(ids)
    blocks = [
        (lo, min(n, lo + block_rows)) for lo in range(0, n, block_rows)
    ]
    jobs = min(effective_n_jobs(n_jobs), len(blocks))
    if jobs <= 1:
        return _serial_similarity(matrix, list(ids), k, block_rows)
    pool = _lease_pool(jobs)
    if pool is None:
        _warn_serial_fallback(jobs)
        return _serial_similarity(matrix, list(ids), k, block_rows)
    with MatrixPublisher(use_shared_memory) as publisher:
        handle = publisher.publish(matrix)
        # Contiguous runs of blocks per worker: preserves each worker's
        # sequential access pattern over the shared matrix.
        entries = [
            (kernels.run_similarity_blocks, (handle, blocks[b_lo:b_hi], k))
            for b_lo, b_hi in iter_chunks(len(blocks), jobs)
        ]
        chunk_results = supervised_map(
            entries,
            pool=pool,
            policy=policy,
            report=report,
            label=label,
            **_supervision_kwargs(jobs),
        )
        by_row: dict[int, list[tuple[int, float]]] = {}
        for chunk in chunk_results:
            for row, neighbours in chunk:
                by_row[row] = neighbours
    return {
        ids[row]: [(ids[j], score) for j, score in by_row[row]]
        for row in range(n)
    }


def _serial_similarity(
    matrix: np.ndarray, ids: list[str], k: int, block_rows: int
) -> dict[str, Neighbours]:
    """In-process blocked similarity (the n_jobs=1 / no-pool path)."""
    if block_rows == SIMILARITY_BLOCK_ROWS:
        return top_k_similar(matrix, ids, k)
    out: dict[str, Neighbours] = {}
    for (row, neighbours) in kernels.run_similarity_blocks(
        MatrixHandle(shape=matrix.shape, dtype=str(matrix.dtype), inline=matrix),
        [(lo, min(len(ids), lo + block_rows)) for lo in range(0, len(ids), block_rows)],
        k,
    ):
        out[ids[row]] = [(ids[j], score) for j, score in neighbours]
    return out


def parallel_map_items(
    fn: Callable[[list], list],
    items: Sequence,
    *,
    n_jobs: int | None = None,
    policy: ExecutionPolicy | None = None,
    report: ExecutionReport | None = None,
    task_label: str | None = None,
) -> list:
    """Generic ordered fan-out: apply a chunk function to slices of items.

    ``fn`` takes a list slice and returns a list of the same length; the
    concatenated results preserve item order.  Used for work that is not
    matrix-shaped (e.g. parsing per-consumer CSV files in
    :func:`repro.io.csvio.read_partitioned`).  Falls back to one
    in-process call when pools are unavailable or pointless; pooled runs
    are supervised like the matrix entry points.
    """
    items = list(items)
    jobs = min(effective_n_jobs(n_jobs), len(items)) if items else 1
    if jobs <= 1:
        return fn(items)
    pool = _lease_pool(jobs)
    if pool is None:
        _warn_serial_fallback(jobs)
        return fn(items)
    policy = policy or get_default_policy()
    label = task_label or getattr(fn, "__name__", "items")
    entries = [
        (fn, (items[lo:hi],)) for lo, hi in iter_chunks(len(items), jobs)
    ]
    chunk_results = supervised_map(
        entries,
        pool=pool,
        policy=policy,
        report=report,
        label=label,
        **_supervision_kwargs(jobs),
    )
    out: list = []
    for chunk in chunk_results:
        out.extend(chunk)
    return out
