"""Benchmark-task dispatch over the parallel substrate.

:func:`run_task_parallel` is the parallel twin of
:func:`repro.core.benchmark.run_task_reference`: same reference kernels,
same output, fanned over a process pool.  ``run_task_reference`` routes
here automatically when its spec carries ``n_jobs != 1`` (or resilience
knobs that need the supervised path, e.g. quarantine).
"""

from __future__ import annotations

from typing import Any

from repro.core.benchmark import BenchmarkSpec, Task
from repro.parallel import kernels
from repro.parallel.executor import parallel_map_consumers, parallel_similarity
from repro.resilience.policy import ExecutionPolicy, policy_for_spec
from repro.resilience.report import ExecutionReport


def run_task_parallel(
    dataset,
    task: Task,
    spec: BenchmarkSpec | None = None,
    n_jobs: int | None = None,
    policy: ExecutionPolicy | None = None,
    report: ExecutionReport | None = None,
) -> dict[str, Any]:
    """Run one benchmark task with the reference kernels, process-parallel.

    ``n_jobs`` overrides ``spec.n_jobs`` when given.  Bit-identical to
    :func:`~repro.core.benchmark.run_task_reference` for every worker
    count (see :mod:`repro.parallel.executor` for the contract).  The
    execution policy resolves from the spec's resilience knobs unless
    passed explicitly; ``report`` collects retry counters and quarantine
    records when provided.
    """
    spec = spec or BenchmarkSpec()
    jobs = spec.n_jobs if n_jobs is None else n_jobs
    policy = policy or policy_for_spec(spec)
    common = {"policy": policy, "report": report, "task_label": task.value}
    if task is Task.HISTOGRAM:
        return parallel_map_consumers(
            kernels.histogram_kernel,
            dataset,
            n_jobs=jobs,
            n_buckets=spec.n_buckets,
            **common,
        )
    if task is Task.THREELINE:
        return parallel_map_consumers(
            kernels.threeline_kernel,
            dataset,
            n_jobs=jobs,
            config=spec.threeline,
            **common,
        )
    if task is Task.PAR:
        return parallel_map_consumers(
            kernels.par_kernel, dataset, n_jobs=jobs, config=spec.par, **common
        )
    if task is Task.SIMILARITY:
        return parallel_similarity(
            dataset.consumption,
            dataset.consumer_ids,
            spec.top_k,
            n_jobs=jobs,
            **common,
        )
    raise ValueError(f"unknown task: {task!r}")
