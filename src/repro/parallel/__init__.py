"""repro.parallel — real process-parallel execution of the benchmark tasks.

The paper's Figure 10 measures multi-core speedup of the four tasks; this
package is the substrate that makes the reproduction *measure* rather
than only model it (the Amdahl model of
:mod:`repro.harness.threading_model` stays, for validating the measured
curve against the paper's published one).

Layers:

* :mod:`repro.parallel.shm` — zero-copy publication of the
  ``(n_consumers, n_hours)`` matrices to workers via
  ``multiprocessing.shared_memory``, with a pickle fallback;
* :mod:`repro.parallel.kernels` — picklable per-consumer kernels and the
  worker entry points;
* :mod:`repro.parallel.warmpool` — the process-lifetime warm worker
  pool every entry point leases instead of spawning per call;
* :mod:`repro.parallel.results` — lossless fixed-width codecs that let
  batched chunk results return through shared memory instead of pickle;
* :mod:`repro.parallel.executor` — the pool: per-consumer chunk fan-out,
  blocked-row-range similarity, measured-cost chunk sizing, serial
  fallback;
* :mod:`repro.parallel.tasks` — benchmark-task dispatch
  (:func:`run_task_parallel`).

Every path is bit-identical to the serial reference for any ``n_jobs``.
"""

from repro.parallel.executor import (
    effective_n_jobs,
    parallel_map_consumer_chunks,
    parallel_map_consumers,
    parallel_map_items,
    parallel_similarity,
)
from repro.parallel.results import PackedChunk, codec_for
from repro.parallel.warmpool import WarmPool, get_warm_pool, reset_warm_pool
from repro.parallel.shm import (
    DatasetHandles,
    MatrixHandle,
    MatrixPublisher,
    attach_matrix,
    iter_chunks,
    publish_dataset,
    shared_memory_available,
)
from repro.parallel.tasks import run_task_parallel

__all__ = [
    "DatasetHandles",
    "MatrixHandle",
    "MatrixPublisher",
    "PackedChunk",
    "WarmPool",
    "attach_matrix",
    "codec_for",
    "effective_n_jobs",
    "get_warm_pool",
    "iter_chunks",
    "parallel_map_consumer_chunks",
    "parallel_map_consumers",
    "parallel_map_items",
    "parallel_similarity",
    "publish_dataset",
    "reset_warm_pool",
    "run_task_parallel",
    "shared_memory_available",
]
