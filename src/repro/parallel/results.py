"""Fixed-width shared-memory result buffers for the batched task kernels.

Pooled batched runs used to pickle every worker's result list back to the
parent — for n=2000 PAR that is 2000 ``ParModel`` objects (each with 24
``HourModel``s) serialized, piped, and rebuilt per call, a cost that
scales with n and eats the parallel win on sub-second kernels.  Instead
the parent allocates one ``(n_consumers, width)`` float64 matrix in
shared memory, each worker *encodes* its chunk's results into its own
disjoint ``[lo, hi)`` row slice, and returns only a tiny
:class:`PackedChunk` marker; the parent decodes the matrix once at the
end.

Codecs are **lossless**: every encoded quantity is either already a
float64, a small non-negative integer (counts, observation totals — exact
in float64 up to 2**53), or a boolean (0.0/1.0).  Decoding therefore
rebuilds objects bit-identical to the pickled path, and the package's
``n_jobs``-invariance contract is unchanged.  Retries compose trivially:
re-running a chunk rewrites the same rows with the same values.

Quarantine runs keep the pickled path — their per-row
``QuarantinedRow`` sentinels have no fixed-width encoding (and are rare
by construction).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any

import numpy as np

from repro.core.histogram import HistogramResult
from repro.core.par import HourModel, ParConfig, ParModel
from repro.core.stats import Line
from repro.core.threeline import PiecewiseLines, ThreeLineModel
from repro.timeseries.calendar import HOURS_PER_DAY


@dataclass(frozen=True)
class PackedChunk:
    """Worker return marker: results live in the shared buffer rows."""

    lo: int
    hi: int


@dataclass(frozen=True)
class HistogramCodec:
    """``HistogramResult`` <-> ``nb+1`` edges followed by ``nb`` counts."""

    n_buckets: int

    def width(self) -> int:
        return 2 * self.n_buckets + 1

    def encode(self, results: list, out: np.ndarray) -> None:
        nb = self.n_buckets
        for row, result in zip(out, results):
            row[: nb + 1] = result.edges
            row[nb + 1 :] = result.counts

    def decode(self, rows: np.ndarray) -> list:
        nb = self.n_buckets
        return [
            HistogramResult(
                edges=row[: nb + 1].copy(),
                counts=row[nb + 1 :].astype(np.int64),
            )
            for row in rows
        ]


#: Per-band layout: 3 slopes, 3 intercepts, 2 breakpoints, sse, adjusted.
_BAND_WIDTH = 10


def _encode_band(band: PiecewiseLines, out: np.ndarray) -> None:
    out[0:3] = [line.slope for line in band.lines]
    out[3:6] = [line.intercept for line in band.lines]
    out[6:8] = band.breakpoints
    out[8] = band.sse
    out[9] = 1.0 if band.adjusted else 0.0


def _decode_band(row: np.ndarray) -> PiecewiseLines:
    return PiecewiseLines(
        lines=(
            Line(float(row[0]), float(row[3])),
            Line(float(row[1]), float(row[4])),
            Line(float(row[2]), float(row[5])),
        ),
        breakpoints=(float(row[6]), float(row[7])),
        sse=float(row[8]),
        adjusted=bool(row[9]),
    )


@dataclass(frozen=True)
class ThreeLineCodec:
    """``ThreeLineModel`` <-> two band blocks plus 5 derived scalars."""

    def width(self) -> int:
        return 2 * _BAND_WIDTH + 5

    def encode(self, results: list, out: np.ndarray) -> None:
        for row, model in zip(out, results):
            _encode_band(model.band_upper, row[:_BAND_WIDTH])
            _encode_band(model.band_lower, row[_BAND_WIDTH : 2 * _BAND_WIDTH])
            row[2 * _BAND_WIDTH] = model.heating_gradient
            row[2 * _BAND_WIDTH + 1] = model.cooling_gradient
            row[2 * _BAND_WIDTH + 2] = model.base_load
            row[2 * _BAND_WIDTH + 3 :] = model.temperature_range

    def decode(self, rows: np.ndarray) -> list:
        return [
            ThreeLineModel(
                band_upper=_decode_band(row[:_BAND_WIDTH]),
                band_lower=_decode_band(row[_BAND_WIDTH : 2 * _BAND_WIDTH]),
                heating_gradient=float(row[2 * _BAND_WIDTH]),
                cooling_gradient=float(row[2 * _BAND_WIDTH + 1]),
                base_load=float(row[2 * _BAND_WIDTH + 2]),
                temperature_range=(
                    float(row[2 * _BAND_WIDTH + 3]),
                    float(row[2 * _BAND_WIDTH + 4]),
                ),
            )
            for row in rows
        ]


@dataclass(frozen=True)
class ParCodec:
    """``ParModel`` <-> profile plus 24 ``(coefficients, sse, n_obs)`` blocks.

    The coefficient count is fixed by the config (``1 + p`` AR terms plus
    one or two temperature terms), so the layout is static per run; the
    config itself travels with the codec and is reattached at decode.
    """

    config: ParConfig

    def _n_coeffs(self) -> int:
        temp_terms = 1 if self.config.temperature_mode == "linear" else 2
        return 1 + self.config.p + temp_terms

    def width(self) -> int:
        return HOURS_PER_DAY * (self._n_coeffs() + 2) + HOURS_PER_DAY

    def encode(self, results: list, out: np.ndarray) -> None:
        k = self._n_coeffs()
        for row, model in zip(out, results):
            row[:HOURS_PER_DAY] = model.profile
            for h, hour_model in enumerate(model.hour_models):
                base = HOURS_PER_DAY + h * (k + 2)
                row[base : base + k] = hour_model.coefficients
                row[base + k] = hour_model.sse
                row[base + k + 1] = hour_model.n_observations

    def decode(self, rows: np.ndarray) -> list:
        k = self._n_coeffs()
        cfg = self.config
        out = []
        for row in rows:
            hour_models = tuple(
                HourModel(
                    hour=h,
                    coefficients=row[
                        HOURS_PER_DAY + h * (k + 2) : HOURS_PER_DAY + h * (k + 2) + k
                    ].copy(),
                    sse=float(row[HOURS_PER_DAY + h * (k + 2) + k]),
                    n_observations=int(row[HOURS_PER_DAY + h * (k + 2) + k + 1]),
                )
                for h in range(HOURS_PER_DAY)
            )
            out.append(
                ParModel(
                    profile=row[:HOURS_PER_DAY].copy(),
                    hour_models=hour_models,
                    p=cfg.p,
                    temperature_mode=cfg.temperature_mode,
                    config=cfg,
                )
            )
        return out


def codec_for(task_label: str, kernel_kwargs: dict[str, Any]):
    """The result codec for a batched task label, or None (pickled path).

    Labels are the ``Task.value`` strings the dispatch layer passes as
    ``task_label``; unknown labels (custom chunk kernels) simply keep
    the pickled return path.
    """
    if task_label == "histogram":
        return HistogramCodec(n_buckets=kernel_kwargs.get("n_buckets", 10))
    if task_label == "threeline":
        return ThreeLineCodec()
    if task_label == "par":
        return ParCodec(config=kernel_kwargs.get("config") or ParConfig())
    return None


__all__ = [
    "HistogramCodec",
    "PackedChunk",
    "ParCodec",
    "ThreeLineCodec",
    "codec_for",
]
