"""Picklable per-consumer kernels and worker entry points.

Everything in this module runs inside worker processes, so it must be
importable by name (module-level functions only — the pool pickles
references, not closures).  The per-consumer kernels are thin wrappers
over the reference kernels of :mod:`repro.core`; engines with hand-written
operators (System C) pass their own module-level kernels instead.

A kernel has the uniform signature::

    kernel(consumption_row, temperature_row, **kwargs) -> result

which is exactly the shape of the paper's "embarrassingly parallel across
consumers" tasks (Section 3.5): one consumer in, one result out, no
cross-consumer state.
"""

from __future__ import annotations

from typing import Any, Callable

import numpy as np

from repro.core.histogram import equi_width_histogram
from repro.core.par import ParConfig, fit_par
from repro.core.similarity import (
    cosine_similarity_block,
    normalize_rows,
    rank_row,
)
from repro.core.threeline import ThreeLineConfig, fit_three_lines
from repro.parallel.shm import DatasetHandles, MatrixHandle, attach_matrix

# Per-consumer reference kernels -------------------------------------------


def histogram_kernel(
    consumption: np.ndarray, temperature: np.ndarray, *, n_buckets: int = 10
):
    """Task 1 for one consumer (temperature unused, uniform signature)."""
    return equi_width_histogram(consumption, n_buckets)


def threeline_kernel(
    consumption: np.ndarray,
    temperature: np.ndarray,
    *,
    config: ThreeLineConfig | None = None,
):
    """Task 2 for one consumer (phase timing is a serial-only feature)."""
    return fit_three_lines(consumption, temperature, config)


def par_kernel(
    consumption: np.ndarray,
    temperature: np.ndarray,
    *,
    config: ParConfig | None = None,
):
    """Task 3 for one consumer."""
    return fit_par(consumption, temperature, config)


# Worker entry points -------------------------------------------------------


def run_consumer_chunk(
    handles: DatasetHandles,
    kernel: Callable[..., Any],
    lo: int,
    hi: int,
    kwargs: dict[str, Any],
) -> list[Any]:
    """Apply ``kernel`` to consumers ``lo:hi`` of a published dataset.

    Rows are materialized as copies so kernels see ordinary writable
    arrays regardless of whether the matrix arrived via shared memory.
    """
    consumption = attach_matrix(handles.consumption)
    temperature = attach_matrix(handles.temperature)
    return [
        kernel(consumption[i].copy(), temperature[i].copy(), **kwargs)
        for i in range(lo, hi)
    ]


def run_matrix_chunk(
    handles: DatasetHandles,
    chunk_kernel: Callable[..., list],
    lo: int,
    hi: int,
    kwargs: dict[str, Any],
) -> list[Any]:
    """Apply a whole-matrix chunk kernel to consumers ``lo:hi``.

    The chunk-granular twin of :func:`run_consumer_chunk`: instead of a
    per-consumer kernel looped over rows, ``chunk_kernel`` (see
    :mod:`repro.batched.dispatch`) takes the ``(hi - lo, hours)`` slices
    whole and returns one result per row.
    """
    consumption = attach_matrix(handles.consumption)
    temperature = attach_matrix(handles.temperature)
    return chunk_kernel(
        consumption[lo:hi].copy(), temperature[lo:hi].copy(), **kwargs
    )


def run_matrix_chunk_packed(
    handles: DatasetHandles,
    result_handle: MatrixHandle,
    codec,
    chunk_kernel: Callable[..., list],
    lo: int,
    hi: int,
    kwargs: dict[str, Any],
):
    """Chunk-kernel entry that writes results into a shared buffer.

    The twin of :func:`run_matrix_chunk` for the warm-pool fast path:
    instead of pickling the result list back, the worker encodes it into
    rows ``[lo, hi)`` of the parent-allocated buffer (codecs in
    :mod:`repro.parallel.results` are lossless) and returns only a tiny
    span marker.  Chunks own disjoint row ranges, so concurrent writers
    never overlap and a supervised retry simply rewrites its rows.
    """
    from repro.parallel.results import PackedChunk

    consumption = attach_matrix(handles.consumption)
    temperature = attach_matrix(handles.temperature)
    results = chunk_kernel(
        consumption[lo:hi].copy(), temperature[lo:hi].copy(), **kwargs
    )
    out = attach_matrix(result_handle, writable=True)
    codec.encode(results, out[lo:hi])
    return PackedChunk(lo, hi)


#: Worker-side cache of normalized similarity matrices, keyed by the
#: consumption matrix's shared-memory name.  Normalizing is O(n * hours)
#: against the O(n^2 * hours) similarity itself, but one worker typically
#: handles many row blocks of the same matrix — no need to redo it.
_normalized_cache: dict[str, np.ndarray] = {}

#: Warm-pool workers are process-lifetime, so cap the cache: each entry
#: is a full (n, hours) float64 copy and unbounded growth across many
#: published matrices would leak worker memory.
_NORMALIZED_CACHE_MAX = 4


def _normalized_for(handle: MatrixHandle) -> np.ndarray:
    matrix = attach_matrix(handle)
    key = handle.shm_name
    if key is None:
        return normalize_rows(matrix)
    cached = _normalized_cache.get(key)
    if cached is None or cached.shape != matrix.shape:
        while len(_normalized_cache) >= _NORMALIZED_CACHE_MAX:
            _normalized_cache.pop(next(iter(_normalized_cache)))
        cached = normalize_rows(matrix)
        _normalized_cache[key] = cached
    return cached


def run_similarity_blocks(
    handle: MatrixHandle,
    blocks: list[tuple[int, int]],
    k: int,
) -> list[tuple[int, list[tuple[int, float]]]]:
    """Compute top-k neighbours for the given row blocks.

    Returns ``(row_index, [(neighbour_index, score), ...])`` pairs; the
    parent maps indices back to consumer ids.  Each block is computed with
    :func:`~repro.core.similarity.cosine_similarity_block` — the same unit
    of work the serial reference uses, so results are bit-identical no
    matter how blocks land on workers.
    """
    normalized = _normalized_for(handle)
    out: list[tuple[int, list[tuple[int, float]]]] = []
    for lo, hi in blocks:
        sims = cosine_similarity_block(normalized, lo, hi)
        for row in range(lo, hi):
            out.append((row, rank_row(sims[row - lo], row, k)))
    return out
