"""The supervised process pool: retry, respawn, and timeout handling.

:func:`supervised_map` is the fault-tolerant replacement for the bare
submit-and-collect loop the executor used to run: it submits every chunk
to the pool, and when a worker dies (``BrokenProcessPool``) or a chunk
exceeds its timeout it

1. harvests every future that already completed cleanly — only the
   incomplete chunks re-run;
2. terminates and discards the broken pool;
3. charges one failed attempt to every still-incomplete chunk (blame is
   unattributable once the pool is broken), raising
   :class:`~repro.exceptions.WorkerCrashError` when a chunk's budget
   (``policy.max_retries`` + 1 attempts) is spent;
4. sleeps the deterministic backoff delay and respawns a fresh pool.

Kernel exceptions (anything that is not a pool-infrastructure failure)
are *not* retryable — re-running deterministic code on the same input
cannot help — and propagate immediately, preserving the pre-supervision
error behaviour.  Because chunks re-run the exact same deterministic
kernels on the exact same slices, results after any number of crashes
are bit-identical to an undisturbed run.
"""

from __future__ import annotations

import concurrent.futures as cf
import os
import time
from typing import Any, Callable

from repro.exceptions import WorkerCrashError
from repro.resilience.backoff import AttemptAccount
from repro.resilience.policy import ExecutionPolicy
from repro.resilience.report import ExecutionReport
from repro.resilience.worker import run_guarded

#: Slot marker for chunks that have not produced a result yet.
_PENDING = object()

#: Failure types that mean "the pool broke", not "the kernel is wrong".
_INFRASTRUCTURE_ERRORS = (cf.BrokenExecutor, cf.TimeoutError, cf.CancelledError)


def supervised_map(
    entries: list[tuple[Callable[..., Any], tuple]],
    *,
    pool,
    pool_factory: Callable[[], Any],
    policy: ExecutionPolicy,
    report: ExecutionReport | None = None,
    label: str = "task",
    owns_pool: bool = True,
    on_pool_failure: Callable[[Any], None] | None = None,
) -> list[Any]:
    """Run ``(entry, args)`` chunks on the pool with supervision.

    Returns one result per entry, in entry order.  With ``owns_pool``
    (the default) the pool is shut down before returning; pass
    ``owns_pool=False`` for a *warm* pool that the caller keeps alive
    across calls — a healthy pool is then left running, and only broken
    or timed-out pools are terminated.  ``on_pool_failure`` is invoked
    with each pool this supervisor terminates, so a warm-pool owner can
    drop its cached reference (its ``pool_factory`` should then register
    the replacement as the new warm pool — that is what makes crash
    recovery *recycle* the warm pool instead of leaking executors).
    ``pool_factory`` may return ``None``, in which case the remaining
    chunks run in-process (where injected kills are suppressed, so the
    fallback always makes progress).
    """
    report = report if report is not None else ExecutionReport()
    parent_pid = os.getpid()
    n = len(entries)
    results: list[Any] = [_PENDING] * n
    accounts = [AttemptAccount(policy.max_retries + 1) for _ in range(n)]
    round_index = 0
    try:
        while True:
            incomplete = [i for i in range(n) if results[i] is _PENDING]
            if not incomplete:
                return results
            if pool is None:
                report.in_process_fallbacks += 1
                for i in incomplete:
                    entry, args = entries[i]
                    results[i] = run_guarded(
                        entry,
                        args,
                        label,
                        i,
                        accounts[i].failures,
                        policy.faults,
                        parent_pid,
                    )
                return results
            failure: BaseException | None = None
            futures: dict[int, Any] = {}
            try:
                for i in incomplete:
                    futures[i] = pool.submit(
                        run_guarded,
                        entries[i][0],
                        entries[i][1],
                        label,
                        i,
                        accounts[i].failures,
                        policy.faults,
                        parent_pid,
                    )
            except _INFRASTRUCTURE_ERRORS as exc:
                # A warm pool can arrive with a worker already dying (the
                # breakage only surfaces at submit); treat it like any
                # other pool failure and respawn.
                failure = exc
            if failure is None:
                for i in incomplete:
                    try:
                        results[i] = futures[i].result(
                            timeout=policy.task_timeout_s
                        )
                    except _INFRASTRUCTURE_ERRORS as exc:
                        failure = exc
                        if isinstance(exc, cf.TimeoutError):
                            report.timeouts += 1
                        break
            if failure is None:
                return results
            # Terminate before harvesting: harvesting can raise a kernel
            # exception, and the failed pool must not outlive this call
            # even then (completed futures keep their results after
            # shutdown, so harvesting after termination loses nothing).
            _terminate_pool(pool)
            if on_pool_failure is not None:
                on_pool_failure(pool)
            pool = None
            _harvest_completed(futures, results, failure)
            still = [i for i in range(n) if results[i] is _PENDING]
            exhausted: list[int] = []
            for i in still:
                accounts[i].fail()
                report.failed_task_attempts += 1
                if accounts[i].exhausted:
                    exhausted.append(i)
            if exhausted:
                raise WorkerCrashError(
                    f"{label}: chunk {exhausted[0]} failed "
                    f"{accounts[exhausted[0]].failures} attempts "
                    f"({type(failure).__name__}: {failure}); giving up"
                ) from failure
            time.sleep(policy.backoff.delay_s(round_index, label))
            round_index += 1
            pool = pool_factory()
            if pool is not None:
                report.pool_respawns += 1
    finally:
        if pool is not None and owns_pool:
            try:
                pool.shutdown(wait=True, cancel_futures=True)
            except Exception:  # pragma: no cover - teardown is best-effort
                pass


def _harvest_completed(
    futures: dict[int, Any], results: list[Any], failure: BaseException
) -> None:
    """Collect clean results that finished before the failure surfaced.

    Kernel exceptions found while harvesting propagate — they are real
    errors on real inputs, and retrying deterministic code cannot fix
    them.  Infrastructure errors on sibling futures are ignored; those
    chunks simply stay incomplete and re-run.
    """
    for i, fut in futures.items():
        if results[i] is not _PENDING or not fut.done():
            continue
        try:
            exc = fut.exception(timeout=0)
        except cf.CancelledError:
            continue
        if exc is None:
            results[i] = fut.result()
        elif not isinstance(exc, _INFRASTRUCTURE_ERRORS):
            raise exc


def _terminate_pool(pool) -> None:
    """Best-effort kill of a (possibly broken) pool and its workers.

    Plain ``shutdown`` cannot stop *running* workers (a timed-out chunk
    keeps computing), so the worker processes are terminated directly
    first; ``_processes`` is CPython's pool internals, hence the
    defensive getattr.
    """
    processes = getattr(pool, "_processes", None) or {}
    for process in list(processes.values()):
        try:
            process.terminate()
        except Exception:  # pragma: no cover - already dead is fine
            pass
    try:
        pool.shutdown(wait=False, cancel_futures=True)
    except Exception:  # pragma: no cover - teardown is best-effort
        pass
