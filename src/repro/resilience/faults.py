"""Real fault injection for chaos-testing the supervised pool.

A :class:`FaultPlan` rides into worker processes with every guarded chunk
(:func:`repro.resilience.worker.run_guarded`) and can *actually* kill the
live worker (``os._exit``) or delay it — the real-process counterpart of
the virtual-time :class:`repro.cluster.job.FailureInjector`, sharing its
deterministic-seed semantics: whether a given (label, chunk, attempt)
triple is hit is a pure function of the plan's seed, so chaos runs are
exactly reproducible.

Faults only fire while ``attempt < max_fault_attempts`` (default: the
first attempt), which guarantees convergence: once the supervisor retries
a chunk past that horizon it runs clean.  Kills are also suppressed in
the parent process (``parent_pid`` guard) so the in-process serial
fallback can never take the whole benchmark down.

Plans come from the ``--inject-failures`` CLI flag or the
``REPRO_INJECT_FAULTS`` environment variable, both using the spec syntax
``kill=0.3,delay=0.1,delay_s=0.05,seed=7,attempts=1`` (a bare ``on`` /
``1`` / empty value selects :data:`DEFAULT_KILL_PROBABILITY`).
"""

from __future__ import annotations

import os
import time
import zlib
from dataclasses import dataclass

import numpy as np

#: Kill probability used when fault injection is enabled without a spec.
DEFAULT_KILL_PROBABILITY = 0.25

#: Environment variable consulted by the default execution policy.
FAULTS_ENV_VAR = "REPRO_INJECT_FAULTS"

#: Exit code of workers killed by injected faults (distinctive in logs).
FAULT_EXIT_CODE = 170


@dataclass(frozen=True)
class FaultPlan:
    """Deterministic worker-killing/delaying schedule for chaos runs."""

    kill_probability: float = 0.0
    delay_probability: float = 0.0
    delay_s: float = 0.05
    seed: int = 0
    max_fault_attempts: int = 1

    def __post_init__(self) -> None:
        if not 0.0 <= self.kill_probability <= 1.0:
            raise ValueError(
                f"kill probability must be in [0, 1], got {self.kill_probability}"
            )
        if not 0.0 <= self.delay_probability <= 1.0:
            raise ValueError(
                f"delay probability must be in [0, 1], got {self.delay_probability}"
            )
        if self.delay_s < 0.0:
            raise ValueError(f"delay_s must be >= 0, got {self.delay_s}")
        if self.seed < 0:
            raise ValueError(f"seed must be >= 0, got {self.seed}")
        if self.max_fault_attempts < 0:
            raise ValueError(
                f"max_fault_attempts must be >= 0, got {self.max_fault_attempts}"
            )

    @property
    def active(self) -> bool:
        """True when this plan can actually do something."""
        return (
            self.kill_probability > 0.0 or self.delay_probability > 0.0
        ) and self.max_fault_attempts > 0

    def _rng(self, label: str, chunk_index: int, attempt: int):
        return np.random.default_rng(
            [
                self.seed,
                zlib.crc32(label.encode("utf-8")),
                chunk_index & 0xFFFFFFFF,
                attempt,
            ]
        )

    def should_kill(self, label: str, chunk_index: int, attempt: int) -> bool:
        """Deterministically decide whether this attempt gets killed."""
        if attempt >= self.max_fault_attempts or self.kill_probability <= 0.0:
            return False
        return float(self._rng(label, chunk_index, attempt).random()) < (
            self.kill_probability
        )

    def should_delay(self, label: str, chunk_index: int, attempt: int) -> bool:
        """Deterministically decide whether this attempt gets delayed."""
        if attempt >= self.max_fault_attempts or self.delay_probability <= 0.0:
            return False
        # Second draw of the same stream: independent of the kill draw.
        rng = self._rng(label, chunk_index, attempt)
        rng.random()
        return float(rng.random()) < self.delay_probability

    def apply(
        self, label: str, chunk_index: int, attempt: int, parent_pid: int
    ) -> None:
        """Fire the scheduled fault for this attempt, if any (worker side).

        Kills never fire in the process identified by ``parent_pid``: the
        in-process serial fallback must survive its own chaos plan.
        """
        if not self.active:
            return
        if self.should_delay(label, chunk_index, attempt):
            time.sleep(self.delay_s)
        if self.should_kill(label, chunk_index, attempt) and (
            os.getpid() != parent_pid
        ):
            os._exit(FAULT_EXIT_CODE)

    @classmethod
    def from_string(cls, spec: str) -> "FaultPlan":
        """Parse a ``key=value,...`` fault spec (CLI / env syntax)."""
        text = spec.strip()
        if text.lower() in ("", "1", "on", "true", "yes"):
            return cls(kill_probability=DEFAULT_KILL_PROBABILITY)
        fields: dict[str, float | int] = {}
        names = {
            "kill": ("kill_probability", float),
            "delay": ("delay_probability", float),
            "delay_s": ("delay_s", float),
            "seed": ("seed", int),
            "attempts": ("max_fault_attempts", int),
        }
        for part in text.split(","):
            part = part.strip()
            if not part:
                continue
            key, sep, value = part.partition("=")
            key = key.strip()
            if key not in names or not sep:
                raise ValueError(
                    f"bad fault spec {spec!r}: expected key=value pairs with "
                    f"keys in {sorted(names)}, got {part!r}"
                )
            field, convert = names[key]
            try:
                fields[field] = convert(value.strip())
            except ValueError as exc:
                raise ValueError(
                    f"bad fault spec {spec!r}: {key}={value.strip()!r} "
                    f"is not a number"
                ) from exc
        return cls(**fields)

    @classmethod
    def from_env(cls) -> "FaultPlan | None":
        """The plan configured via :data:`FAULTS_ENV_VAR`, or None."""
        spec = os.environ.get(FAULTS_ENV_VAR)
        if spec is None or not spec.strip():
            return None
        return cls.from_string(spec)
