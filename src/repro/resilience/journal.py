"""Checkpoint/resume journal for multi-figure benchmark runs.

Layout of a run directory (``smartbench --run-dir RUN`` creates it,
``smartbench --resume RUN`` reads it)::

    RUN/
      run.json              # manifest: figure ids, jobs/kernel knobs
      journal/
        <figure_id>.json    # one completed figure's full result

Each figure's result is journaled the moment it completes, with the full
write-temp + fsync + rename + directory-fsync discipline, so a crash,
power cut, or Ctrl-C can never leave a half-written record *or* a record
that the filesystem loses after the rename.  Resuming skips every
journaled figure — its result is loaded and re-rendered instead of
recomputed — and runs the rest, so an interrupted run finishes without
re-executing work.  A torn or corrupt journal entry (pre-hardening
writes, disk damage) is treated as *not complete*: the figure simply
re-runs instead of the resume crashing or trusting garbage.
"""

from __future__ import annotations

import json
import os
import time
from pathlib import Path
from typing import Any


def _atomic_write_json(path: Path, payload: dict) -> None:
    tmp = path.with_suffix(path.suffix + ".tmp")
    with open(tmp, "w", encoding="utf-8") as handle:
        handle.write(json.dumps(payload, indent=2, sort_keys=True))
        handle.flush()
        os.fsync(handle.fileno())
    os.replace(tmp, path)
    fd = os.open(path.parent, os.O_RDONLY)
    try:
        os.fsync(fd)
    finally:
        os.close(fd)


class RunJournal:
    """One run directory's manifest and per-figure result journal."""

    def __init__(self, run_dir: str | Path) -> None:
        self.run_dir = Path(run_dir)
        self.journal_dir = self.run_dir / "journal"
        self.manifest_path = self.run_dir / "run.json"

    # Manifest ----------------------------------------------------------

    def begin(
        self,
        figure_ids: list[str],
        jobs: int | None = None,
        kernel: str | None = None,
    ) -> None:
        """Create/extend the manifest for this run's figure list."""
        self.journal_dir.mkdir(parents=True, exist_ok=True)
        manifest = self.manifest()
        known = manifest.get("figures", [])
        manifest["figures"] = known + [f for f in figure_ids if f not in known]
        if jobs is not None:
            manifest["jobs"] = jobs
        if kernel is not None:
            manifest["kernel"] = kernel
        manifest.setdefault("created_unix", time.time())
        _atomic_write_json(self.manifest_path, manifest)

    def manifest(self) -> dict[str, Any]:
        """The run manifest, or an empty dict for a fresh directory."""
        if not self.manifest_path.exists():
            return {}
        return json.loads(self.manifest_path.read_text())

    def exists(self) -> bool:
        """True when this directory holds a started run."""
        return self.manifest_path.exists()

    # Per-figure journal ------------------------------------------------

    def _entry_path(self, figure_id: str) -> Path:
        return self.journal_dir / f"{figure_id}.json"

    def is_complete(self, figure_id: str) -> bool:
        """True when this figure's result is journaled *and* readable.

        A torn or corrupt entry (a crash mid-write predating the fsync
        discipline, or disk damage) counts as incomplete so the resume
        re-runs the figure instead of failing on garbage.
        """
        path = self._entry_path(figure_id)
        if not path.exists():
            return False
        try:
            payload = json.loads(path.read_text())
        except (OSError, json.JSONDecodeError):
            return False
        return isinstance(payload, dict) and "figure" in payload

    def pending(self, figure_ids: list[str]) -> list[str]:
        """The figures of the list that still need to run."""
        return [f for f in figure_ids if not self.is_complete(f)]

    def record(
        self,
        result,
        elapsed_s: float,
        params: dict[str, Any] | None = None,
    ) -> Path:
        """Journal one completed FigureResult atomically."""
        self.journal_dir.mkdir(parents=True, exist_ok=True)
        payload = {
            "figure": result.to_json_dict(),
            "elapsed_s": elapsed_s,
            "params": params or {},
            "recorded_unix": time.time(),
        }
        path = self._entry_path(result.figure_id)
        _atomic_write_json(path, payload)
        return path

    def load_result(self, figure_id: str):
        """Rehydrate a journaled figure's FigureResult."""
        # Lazy import: the harness imports this package for the CLI flow.
        from repro.harness.report import FigureResult

        payload = json.loads(self._entry_path(figure_id).read_text())
        return FigureResult.from_json_dict(payload["figure"])

    def load_entry(self, figure_id: str) -> dict[str, Any]:
        """The raw journal payload (figure dict, elapsed time, params)."""
        return json.loads(self._entry_path(figure_id).read_text())
