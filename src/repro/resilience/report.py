"""Execution reports: retry counters and quarantine records.

An :class:`ExecutionReport` is the mutable sink the supervised execution
layer writes into while a task runs: how many chunk attempts failed, how
often the pool had to be respawned or fell back in-process, and which
consumers were quarantined.  Callers that care pass one in
(``run_task_reference(..., report=...)``); callers that don't get the
default raise-on-error behaviour and can ignore it.
"""

from __future__ import annotations

from dataclasses import dataclass, field


@dataclass(frozen=True)
class QuarantineRecord:
    """One consumer whose kernel raised instead of producing a result."""

    consumer_id: str
    task: str
    error_type: str
    message: str

    def __str__(self) -> str:
        return (
            f"{self.task}: consumer {self.consumer_id!r} quarantined "
            f"({self.error_type}: {self.message})"
        )


@dataclass
class ExecutionReport:
    """Counters and quarantine records from one supervised execution."""

    failed_task_attempts: int = 0
    pool_respawns: int = 0
    timeouts: int = 0
    in_process_fallbacks: int = 0
    quarantined: list[QuarantineRecord] = field(default_factory=list)

    @property
    def clean(self) -> bool:
        """True when nothing went wrong (no retries, no quarantines)."""
        return (
            self.failed_task_attempts == 0
            and self.pool_respawns == 0
            and self.timeouts == 0
            and not self.quarantined
        )

    def quarantine(self, record: QuarantineRecord) -> None:
        """Append one quarantine record."""
        self.quarantined.append(record)

    def merge(self, other: "ExecutionReport") -> None:
        """Fold another report's counters and records into this one."""
        self.failed_task_attempts += other.failed_task_attempts
        self.pool_respawns += other.pool_respawns
        self.timeouts += other.timeouts
        self.in_process_fallbacks += other.in_process_fallbacks
        self.quarantined.extend(other.quarantined)

    def summary(self) -> str:
        """One human-readable line (figure notes, CLI output)."""
        parts = []
        if self.failed_task_attempts:
            parts.append(f"{self.failed_task_attempts} failed task attempts")
        if self.pool_respawns:
            parts.append(f"{self.pool_respawns} pool respawns")
        if self.timeouts:
            parts.append(f"{self.timeouts} chunk timeouts")
        if self.in_process_fallbacks:
            parts.append(f"{self.in_process_fallbacks} in-process fallbacks")
        if self.quarantined:
            parts.append(f"{len(self.quarantined)} consumers quarantined")
        return "; ".join(parts) if parts else "clean run"
