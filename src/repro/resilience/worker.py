"""Worker-side guards: fault injection wrapper and quarantining entries.

Everything here runs inside pool workers, so it is module-level and
picklable by reference, like :mod:`repro.parallel.kernels`.  Two jobs:

* :func:`run_guarded` wraps any worker entry point with the execution
  policy's :class:`~repro.resilience.faults.FaultPlan`, so injected
  kills/delays hit *live* workers mid-task;
* the ``*_quarantined`` entries mirror the plain entries of
  :mod:`repro.parallel.kernels` but convert a per-consumer ``DataError``
  into a :class:`QuarantinedRow` sentinel instead of letting it kill the
  whole batch.  For whole-matrix chunk kernels — which see many
  consumers per call — the bad rows are located by recursive bisection
  (:func:`guarded_matrix`), which is valid because every batched kernel
  is chunking-invariant (see :mod:`repro.batched.dispatch`).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Any, Callable

import numpy as np

from repro.exceptions import DataError
from repro.resilience.faults import FaultPlan

if TYPE_CHECKING:  # import cycle: repro.parallel imports this package
    from repro.parallel.shm import DatasetHandles


@dataclass(frozen=True)
class QuarantinedRow:
    """In-band marker: this consumer's kernel raised a ``DataError``."""

    error_type: str
    message: str


def run_guarded(
    entry: Callable[..., Any],
    args: tuple,
    label: str,
    chunk_index: int,
    attempt: int,
    faults: FaultPlan | None,
    parent_pid: int,
) -> Any:
    """Run a worker entry point under the fault plan (chaos hook)."""
    if faults is not None:
        faults.apply(label, chunk_index, attempt, parent_pid)
    return entry(*args)


# Quarantining twins of the repro.parallel.kernels worker entries --------


def guarded_rows(
    kernel: Callable[..., Any],
    consumption: np.ndarray,
    temperature: np.ndarray,
    kwargs: dict[str, Any],
) -> list[Any]:
    """Per-consumer kernel over rows, DataError -> QuarantinedRow."""
    out: list[Any] = []
    for i in range(consumption.shape[0]):
        try:
            out.append(
                kernel(consumption[i].copy(), temperature[i].copy(), **kwargs)
            )
        except DataError as exc:
            out.append(QuarantinedRow(type(exc).__name__, str(exc)))
    return out


def guarded_matrix(
    chunk_kernel: Callable[..., list],
    consumption: np.ndarray,
    temperature: np.ndarray,
    kwargs: dict[str, Any],
) -> list[Any]:
    """Whole-matrix chunk kernel with bad rows located by bisection.

    Happy path: one kernel call, zero overhead.  When the kernel raises
    ``DataError`` the slice is split in half and each half retried,
    down to single rows — only the poisoned rows become
    :class:`QuarantinedRow`, and because the batched kernels are
    chunking-invariant the surviving rows' results are unchanged by the
    splitting.
    """
    n = consumption.shape[0]
    if n == 0:
        return []
    try:
        return list(chunk_kernel(consumption, temperature, **kwargs))
    except DataError as exc:
        if n == 1:
            return [QuarantinedRow(type(exc).__name__, str(exc))]
    mid = n // 2
    return guarded_matrix(
        chunk_kernel, consumption[:mid], temperature[:mid], kwargs
    ) + guarded_matrix(chunk_kernel, consumption[mid:], temperature[mid:], kwargs)


def run_consumer_chunk_quarantined(
    handles: DatasetHandles,
    kernel: Callable[..., Any],
    lo: int,
    hi: int,
    kwargs: dict[str, Any],
) -> list[Any]:
    """Quarantining twin of :func:`repro.parallel.kernels.run_consumer_chunk`."""
    from repro.parallel.shm import attach_matrix

    consumption = attach_matrix(handles.consumption)
    temperature = attach_matrix(handles.temperature)
    return guarded_rows(kernel, consumption[lo:hi], temperature[lo:hi], kwargs)


def run_matrix_chunk_quarantined(
    handles: DatasetHandles,
    chunk_kernel: Callable[..., list],
    lo: int,
    hi: int,
    kwargs: dict[str, Any],
) -> list[Any]:
    """Quarantining twin of :func:`repro.parallel.kernels.run_matrix_chunk`."""
    from repro.parallel.shm import attach_matrix

    consumption = attach_matrix(handles.consumption)
    temperature = attach_matrix(handles.temperature)
    return guarded_matrix(
        chunk_kernel,
        consumption[lo:hi].copy(),
        temperature[lo:hi].copy(),
        kwargs,
    )
