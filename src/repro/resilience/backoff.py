"""Shared retry bookkeeping: backoff schedule and attempt accounting.

Both fault-tolerance layers of this repository draw from this module so
simulated and real recovery stay consistent:

* the *real* supervised process pool (:mod:`repro.resilience.supervisor`)
  sleeps :meth:`BackoffSchedule.delay_s` between retry rounds and tracks
  per-chunk attempts with :class:`AttemptAccount`;
* the *simulated* MapReduce failure injector
  (:class:`repro.cluster.job.FailureInjector`) accounts its virtual-time
  retries with the same :class:`AttemptAccount` (it previously carried a
  duplicate failure counter plus a lossy multiplier round-trip).

Jitter is deterministic: the schedule seeds a ``numpy`` generator from
``(seed, key, attempt)``, so a given run configuration always produces
the same delays — retries never make results or timing irreproducible.
"""

from __future__ import annotations

import zlib
from dataclasses import dataclass

import numpy as np


def _key_entropy(key: int | str) -> int:
    """A non-negative 32-bit entropy word for a schedule key."""
    if isinstance(key, int):
        return key & 0xFFFFFFFF
    return zlib.crc32(str(key).encode("utf-8"))


@dataclass(frozen=True)
class BackoffSchedule:
    """Exponential backoff with deterministic seeded jitter.

    ``delay_s(attempt)`` grows as ``base_delay_s * multiplier ** attempt``
    capped at ``max_delay_s``; ``jitter`` then shaves off a deterministic
    pseudo-random fraction in ``[0, jitter)`` of the raw delay (full
    jitter shortens, never lengthens, so the cap is a true upper bound).
    """

    base_delay_s: float = 0.02
    multiplier: float = 2.0
    max_delay_s: float = 1.0
    jitter: float = 0.5
    seed: int = 0

    def __post_init__(self) -> None:
        if self.base_delay_s < 0.0:
            raise ValueError(f"base_delay_s must be >= 0, got {self.base_delay_s}")
        if self.multiplier < 1.0:
            raise ValueError(f"multiplier must be >= 1, got {self.multiplier}")
        if self.max_delay_s < self.base_delay_s:
            raise ValueError("max_delay_s must be >= base_delay_s")
        if not 0.0 <= self.jitter <= 1.0:
            raise ValueError(f"jitter must be in [0, 1], got {self.jitter}")
        if self.seed < 0:
            raise ValueError(f"seed must be >= 0, got {self.seed}")

    def delay_s(self, attempt: int, key: int | str = 0) -> float:
        """The delay before retry number ``attempt`` (0-based) of ``key``."""
        if attempt < 0:
            raise ValueError(f"attempt must be >= 0, got {attempt}")
        raw = min(self.max_delay_s, self.base_delay_s * self.multiplier**attempt)
        if self.jitter <= 0.0 or raw <= 0.0:
            return raw
        rng = np.random.default_rng([self.seed, _key_entropy(key), attempt])
        return raw * (1.0 - self.jitter * float(rng.random()))


@dataclass
class AttemptAccount:
    """Failure counter for one retried unit of work.

    ``max_attempts`` is the total attempt budget (first try included);
    :meth:`fail` records one failed attempt, :attr:`exhausted` says the
    budget is spent, and :meth:`retry_multiplier` converts the failures
    into the virtual-time duration multiplier the simulated cluster uses
    (each wasted attempt costs ``wasted_fraction`` of the task duration).
    """

    max_attempts: int
    failures: int = 0

    def __post_init__(self) -> None:
        if self.max_attempts < 1:
            raise ValueError(f"max_attempts must be >= 1, got {self.max_attempts}")

    def fail(self) -> None:
        """Record one failed attempt."""
        self.failures += 1

    @property
    def exhausted(self) -> bool:
        """True once every attempt in the budget has failed."""
        return self.failures >= self.max_attempts

    def retry_multiplier(self, wasted_fraction: float) -> float:
        """Virtual-duration multiplier for the wasted attempts."""
        return 1.0 + self.failures * wasted_fraction
