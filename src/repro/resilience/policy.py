"""Execution policy: the knobs that govern supervised execution.

One frozen :class:`ExecutionPolicy` travels from the spec/CLI down to the
supervisor.  Precedence, highest first:

1. an explicit ``policy=`` argument to a parallel entry point;
2. per-spec knobs (``BenchmarkSpec(max_retries=..., task_timeout_s=...,
   on_error=...)``) — ``None`` means "inherit";
3. the process-wide default policy (:func:`set_default_policy` /
   :func:`configure_defaults`, set by the CLI flags), whose fault plan
   falls back to the ``REPRO_INJECT_FAULTS`` environment variable.

The default policy retries crashed/timed-out chunks (``max_retries=2``)
but never retries kernel exceptions, so default behaviour on healthy
runs is byte-for-byte what it was before this layer existed.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace

from repro.resilience.backoff import BackoffSchedule
from repro.resilience.faults import FaultPlan

#: Valid ``on_error`` modes: re-raise kernel errors (default) or convert
#: per-consumer ``DataError`` into quarantine records.
ON_ERROR_MODES = ("raise", "quarantine")

#: Retry budget (beyond the first attempt) for crashed/timed-out chunks.
DEFAULT_MAX_RETRIES = 2


@dataclass(frozen=True)
class ExecutionPolicy:
    """How the supervised pool treats failures for one execution."""

    max_retries: int = DEFAULT_MAX_RETRIES
    task_timeout_s: float | None = None
    on_error: str = "raise"
    backoff: BackoffSchedule = field(default_factory=BackoffSchedule)
    faults: FaultPlan | None = None

    def __post_init__(self) -> None:
        if self.max_retries < 0:
            raise ValueError(f"max_retries must be >= 0, got {self.max_retries}")
        if self.task_timeout_s is not None and self.task_timeout_s <= 0.0:
            raise ValueError(
                f"task_timeout_s must be > 0, got {self.task_timeout_s}"
            )
        if self.on_error not in ON_ERROR_MODES:
            raise ValueError(
                f"unknown on_error mode {self.on_error!r}; "
                f"expected one of {ON_ERROR_MODES}"
            )

    @property
    def quarantine(self) -> bool:
        """True when per-consumer ``DataError`` becomes a quarantine record."""
        return self.on_error == "quarantine"


#: The explicitly configured process-wide default (None = derive fresh).
_default_policy: ExecutionPolicy | None = None


def get_default_policy() -> ExecutionPolicy:
    """The process-wide default policy.

    When none has been set explicitly, a fresh default is derived on each
    call so late changes to ``REPRO_INJECT_FAULTS`` are honoured (tests
    and CI toggle it between runs).
    """
    if _default_policy is not None:
        return _default_policy
    return ExecutionPolicy(faults=FaultPlan.from_env())


def set_default_policy(policy: ExecutionPolicy | None) -> None:
    """Install (or with ``None`` clear) the process-wide default policy."""
    global _default_policy
    _default_policy = policy


def configure_defaults(
    *,
    max_retries: int | None = None,
    task_timeout_s: float | None = None,
    on_error: str | None = None,
    faults: FaultPlan | None = None,
) -> ExecutionPolicy:
    """Override selected fields of the default policy (CLI entry point).

    Only the given fields change; the rest keep their current default
    values.  Returns the installed policy.
    """
    base = get_default_policy()
    overrides: dict = {}
    if max_retries is not None:
        overrides["max_retries"] = max_retries
    if task_timeout_s is not None:
        overrides["task_timeout_s"] = task_timeout_s
    if on_error is not None:
        overrides["on_error"] = on_error
    if faults is not None:
        overrides["faults"] = faults
    policy = replace(base, **overrides)
    set_default_policy(policy)
    return policy


def policy_for_spec(spec) -> ExecutionPolicy:
    """Resolve a BenchmarkSpec's resilience knobs against the default.

    Spec fields set to ``None`` inherit from :func:`get_default_policy`;
    non-None fields win.  Specs without the knobs (duck-typed callers)
    get the default policy unchanged.
    """
    policy = get_default_policy()
    overrides: dict = {}
    max_retries = getattr(spec, "max_retries", None)
    if max_retries is not None:
        overrides["max_retries"] = max_retries
    task_timeout_s = getattr(spec, "task_timeout_s", None)
    if task_timeout_s is not None:
        overrides["task_timeout_s"] = task_timeout_s
    on_error = getattr(spec, "on_error", None)
    if on_error is not None:
        overrides["on_error"] = on_error
    return replace(policy, **overrides) if overrides else policy
