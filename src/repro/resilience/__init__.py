"""repro.resilience — fault-tolerant execution of the benchmark tasks.

The paper's platform comparison leans on Hadoop/Spark precisely because
they survive task failures; this package gives the repository's *real*
process-parallel layer (:mod:`repro.parallel`) the same operational
story, in four pieces:

* :mod:`repro.resilience.supervisor` — chunk-level retry with pool
  respawn, per-chunk timeouts, and exponential backoff
  (:mod:`repro.resilience.backoff`, shared with the simulated cluster's
  :class:`~repro.cluster.job.FailureInjector`);
* :mod:`repro.resilience.worker` — per-consumer ``DataError``
  quarantine (bad rows become records in the run report instead of
  killing the batch);
* :mod:`repro.resilience.journal` — checkpoint/resume for multi-figure
  ``smartbench`` runs;
* :mod:`repro.resilience.faults` — deterministic real fault injection
  (kill/delay live workers) so all of the above is chaos-testable.

Success paths stay bit-identical to serial execution for every
``n_jobs``, including runs where injected crashes force retries: chunks
re-run the same deterministic kernels on the same slices.
"""

from repro.resilience.backoff import AttemptAccount, BackoffSchedule
from repro.resilience.crashpoints import (
    CRASH_ENV_VAR,
    CRASH_EXIT_CODE,
    CrashPlan,
    clear_crash_plan,
    crash_here,
    inject_crash,
    set_crash_plan,
    should_crash,
    trip,
)
from repro.resilience.faults import FAULTS_ENV_VAR, FaultPlan
from repro.resilience.journal import RunJournal
from repro.resilience.policy import (
    ExecutionPolicy,
    configure_defaults,
    get_default_policy,
    policy_for_spec,
    set_default_policy,
)
from repro.resilience.report import ExecutionReport, QuarantineRecord
from repro.resilience.supervisor import supervised_map
from repro.resilience.worker import QuarantinedRow

__all__ = [
    "AttemptAccount",
    "BackoffSchedule",
    "CRASH_ENV_VAR",
    "CRASH_EXIT_CODE",
    "CrashPlan",
    "ExecutionPolicy",
    "ExecutionReport",
    "FAULTS_ENV_VAR",
    "FaultPlan",
    "clear_crash_plan",
    "crash_here",
    "inject_crash",
    "set_crash_plan",
    "should_crash",
    "trip",
    "QuarantineRecord",
    "QuarantinedRow",
    "RunJournal",
    "configure_defaults",
    "get_default_policy",
    "policy_for_spec",
    "set_default_policy",
    "supervised_map",
]
