"""Deterministic kill points for crash-recovery testing.

:mod:`repro.resilience.faults` kills pooled *workers*; this module kills
the process at named **kill points** inside the durability code paths so
recovery can be exercised from every dangerous instant.  The streaming
durability layer (:mod:`repro.streaming.durability`) checks three points:

* ``wal-append`` — after half of a WAL record has been written and
  fsync'd (a torn record on disk);
* ``checkpoint`` — after half of a checkpoint temp file has been written
  (the rename never happens, so the previous checkpoint stays latest);
* ``sink-append`` — after new partition files are written but before the
  table meta commit (the store must self-heal on reopen).

A plan is armed either explicitly (:func:`set_crash_plan`, or the
:func:`inject_crash` context manager in tests) or ambiently through the
``REPRO_INJECT_CRASH`` environment variable so child processes inherit
it, e.g.::

    REPRO_INJECT_CRASH=point=wal-append,at=3,mode=exit,flag=/tmp/fired

``at`` selects the N-th hit of the point (1-based, counted per process);
``mode=exit`` dies with :data:`CRASH_EXIT_CODE` via ``os._exit`` (no
cleanup, like a real crash), ``mode=raise`` raises
:class:`~repro.exceptions.InjectedCrash` for in-process tests.  ``flag``
names a file created when the plan fires; once it exists the plan is
spent, so a supervisor that restarts the crashed process does not crash
it again — one chaos event per plan, deterministic across the fleet.
"""

from __future__ import annotations

import os
from contextlib import contextmanager
from dataclasses import dataclass
from pathlib import Path
from typing import Iterator

from repro.exceptions import InjectedCrash, ResilienceError

#: Environment variable an ambient crash plan is read from.
CRASH_ENV_VAR = "REPRO_INJECT_CRASH"

#: Exit status of an injected ``mode=exit`` crash (distinct from the
#: fault injector's 170 so chaos harnesses can tell them apart).
CRASH_EXIT_CODE = 171

#: Kill points the durability layer exposes (``fleet-batch`` is hit by
#: shard workers before each batch ingest — the stall-injection point).
KNOWN_POINTS = ("wal-append", "checkpoint", "sink-append", "fleet-batch")


@dataclass(frozen=True)
class CrashPlan:
    """One deterministic kill point: where, when, and how to die."""

    point: str
    #: Fire on the N-th hit of the point (1-based, per process).
    at: int = 1
    #: ``exit`` = os._exit(CRASH_EXIT_CODE); ``raise`` = InjectedCrash;
    #: ``hang`` = sleep forever (a stuck-not-dead worker, for testing
    #: stall supervision — pair with ``flag`` so the restart is clean).
    mode: str = "exit"
    #: Optional single-fire flag file: once it exists, the plan is spent.
    flag: str | None = None

    def __post_init__(self) -> None:
        if self.point not in KNOWN_POINTS:
            raise ResilienceError(
                f"unknown kill point {self.point!r}; known: {KNOWN_POINTS}"
            )
        if self.at < 1:
            raise ResilienceError(f"at must be >= 1, got {self.at}")
        if self.mode not in ("exit", "raise", "hang"):
            raise ResilienceError(
                f"mode must be 'exit', 'raise' or 'hang', got {self.mode!r}"
            )

    @classmethod
    def from_string(cls, spec: str) -> "CrashPlan":
        """Parse ``point=wal-append,at=2,mode=exit,flag=/tmp/f``."""
        fields: dict[str, str] = {}
        for part in spec.split(","):
            part = part.strip()
            if not part:
                continue
            if "=" not in part:
                raise ResilienceError(
                    f"bad crash plan field {part!r} in {spec!r} "
                    "(expected key=value)"
                )
            key, value = part.split("=", 1)
            fields[key.strip()] = value.strip()
        unknown = set(fields) - {"point", "at", "mode", "flag"}
        if unknown:
            raise ResilienceError(
                f"unknown crash plan keys {sorted(unknown)} in {spec!r}"
            )
        if "point" not in fields:
            raise ResilienceError(f"crash plan {spec!r} names no point")
        return cls(
            point=fields["point"],
            at=int(fields.get("at", "1")),
            mode=fields.get("mode", "exit"),
            flag=fields.get("flag"),
        )

    @classmethod
    def from_env(cls) -> "CrashPlan | None":
        """The ambient plan from ``REPRO_INJECT_CRASH``, if armed."""
        spec = os.environ.get(CRASH_ENV_VAR, "").strip()
        return cls.from_string(spec) if spec else None

    def to_string(self) -> str:
        """Inverse of :meth:`from_string` (for child-process env)."""
        out = f"point={self.point},at={self.at},mode={self.mode}"
        if self.flag:
            out += f",flag={self.flag}"
        return out

    @property
    def spent(self) -> bool:
        """True once a flagged plan has fired (flag file exists)."""
        return self.flag is not None and os.path.exists(self.flag)


#: Explicit in-process plan; ``_UNSET`` falls back to the environment.
_UNSET = object()
_plan: "CrashPlan | None | object" = _UNSET
_hits: dict[str, int] = {}


def set_crash_plan(plan: CrashPlan | None) -> None:
    """Arm (or with ``None``, disarm) the in-process crash plan.

    An explicit plan overrides the environment — including ``None``,
    which disables injection even when ``REPRO_INJECT_CRASH`` is set.
    Resets the per-point hit counters.
    """
    global _plan
    _plan = plan
    _hits.clear()


def clear_crash_plan() -> None:
    """Drop any explicit plan, falling back to the environment."""
    global _plan
    _plan = _UNSET
    _hits.clear()


def active_plan() -> CrashPlan | None:
    """The effective plan: explicit if set, else the environment's."""
    if _plan is not _UNSET:
        return _plan  # type: ignore[return-value]
    return CrashPlan.from_env()


def should_crash(point: str) -> bool:
    """Count a hit of ``point``; True when the armed plan says to die.

    Callers that need to leave evidence behind (a torn record, a partial
    temp file) check this first, write the partial state, then call
    :func:`trip`.
    """
    plan = active_plan()
    if plan is None or plan.point != point or plan.spent:
        return False
    _hits[point] = _hits.get(point, 0) + 1
    return _hits[point] == plan.at


def trip(point: str) -> None:
    """Fire the armed plan at ``point`` (marks flagged plans spent)."""
    plan = active_plan()
    if plan is None:  # pragma: no cover - callers gate on should_crash
        raise ResilienceError(f"trip({point!r}) with no crash plan armed")
    if plan.flag is not None:
        Path(plan.flag).touch()
    if plan.mode == "raise":
        raise InjectedCrash(f"injected crash at kill point {point!r}")
    if plan.mode == "hang":  # pragma: no cover - killed by supervisor
        import time

        while True:
            time.sleep(60.0)
    os._exit(CRASH_EXIT_CODE)  # pragma: no cover - kills the process


def crash_here(point: str) -> None:
    """``if should_crash(point): trip(point)`` for call sites with no
    partial state to stage."""
    if should_crash(point):
        trip(point)


@contextmanager
def inject_crash(
    point: str, at: int = 1, mode: str = "raise", flag: str | None = None
) -> Iterator[CrashPlan]:
    """Arm a plan for the duration of a ``with`` block (tests)."""
    plan = CrashPlan(point=point, at=at, mode=mode, flag=flag)
    prev = _plan
    set_crash_plan(plan)
    try:
        yield plan
    finally:
        if prev is _UNSET:
            clear_crash_plan()
        else:
            set_crash_plan(prev)  # type: ignore[arg-type]
