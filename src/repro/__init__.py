"""repro — reproduction of "Benchmarking Smart Meter Data Analytics" (EDBT 2015).

A self-contained Python library providing:

* the paper's four-task smart-meter analytics benchmark
  (:mod:`repro.core.benchmark`);
* the realistic data generator of Section 4 (:mod:`repro.core.generator`);
* five executable platform analogues — Matlab-style numeric, a mini
  relational DBMS with in-database ML (MADLib-style), a main-memory column
  store (System C-style), and Spark/Hive analogues on a simulated cluster
  (:mod:`repro.engines`);
* a harness that regenerates every table and figure of the paper's
  evaluation (:mod:`repro.harness`).

Quickstart::

    from repro import make_seed_dataset, SmartMeterGenerator, Task, run_task_reference

    seed = make_seed_dataset()
    gen = SmartMeterGenerator.fit(seed)
    data = gen.generate(500, seed.temperature[0])
    models = run_task_reference(data, Task.THREELINE)
"""

from repro.core.benchmark import (
    AR_ORDER,
    NUM_BUCKETS,
    TOP_K,
    BenchmarkSpec,
    Task,
    run_task_reference,
)
from repro.core.generator import GeneratorConfig, SmartMeterGenerator
from repro.core.histogram import HistogramResult, equi_width_histogram
from repro.core.kmeans import KMeansResult, kmeans
from repro.core.par import ParConfig, ParModel, fit_par
from repro.core.similarity import top_k_similar
from repro.core.threeline import ThreeLineConfig, ThreeLineModel, fit_three_lines
from repro.datagen.seed import SeedConfig, make_seed_dataset
from repro.datagen.weather import WeatherConfig, make_temperature_series
from repro.timeseries.series import ConsumerSeries, Dataset

__version__ = "1.0.0"

__all__ = [
    "AR_ORDER",
    "BenchmarkSpec",
    "ConsumerSeries",
    "Dataset",
    "GeneratorConfig",
    "HistogramResult",
    "KMeansResult",
    "NUM_BUCKETS",
    "ParConfig",
    "ParModel",
    "SeedConfig",
    "SmartMeterGenerator",
    "TOP_K",
    "Task",
    "ThreeLineConfig",
    "ThreeLineModel",
    "WeatherConfig",
    "equi_width_histogram",
    "fit_par",
    "fit_three_lines",
    "kmeans",
    "make_seed_dataset",
    "make_temperature_series",
    "run_task_reference",
    "top_k_similar",
]
