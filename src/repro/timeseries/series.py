"""Series and dataset containers.

The benchmark input (paper, Section 3) is ``n`` consumption time series, one
per consumer, each accompanied by an external temperature series of the same
length.  :class:`ConsumerSeries` holds one consumer; :class:`Dataset` holds
the whole input as dense matrices so that vectorized engines can work on it
directly while file-based engines serialize it through :mod:`repro.io`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterator, Sequence

import numpy as np

from repro.exceptions import DataError
from repro.timeseries.calendar import HOURS_PER_DAY


def _as_float_vector(values: Sequence[float] | np.ndarray, name: str) -> np.ndarray:
    arr = np.asarray(values, dtype=np.float64)
    if arr.ndim != 1:
        raise DataError(f"{name} must be 1-D, got shape {arr.shape}")
    if arr.size == 0:
        raise DataError(f"{name} must be non-empty")
    return arr


@dataclass(frozen=True)
class ConsumerSeries:
    """One consumer: an id, hourly consumption (kWh) and hourly temperature.

    Both series must have the same length.  Consumption may contain NaN for
    missing readings (see :mod:`repro.timeseries.quality`); the analytics
    algorithms require NaN-free input and will reject it otherwise.
    """

    consumer_id: str
    consumption: np.ndarray
    temperature: np.ndarray

    def __post_init__(self) -> None:
        object.__setattr__(
            self, "consumption", _as_float_vector(self.consumption, "consumption")
        )
        object.__setattr__(
            self, "temperature", _as_float_vector(self.temperature, "temperature")
        )
        if self.consumption.shape != self.temperature.shape:
            raise DataError(
                "consumption and temperature lengths differ: "
                f"{self.consumption.shape[0]} vs {self.temperature.shape[0]}"
            )
        self.consumption.flags.writeable = False
        self.temperature.flags.writeable = False

    @property
    def n_hours(self) -> int:
        """Number of hourly readings in the series."""
        return int(self.consumption.shape[0])

    @property
    def n_days(self) -> int:
        """Number of whole days covered by the series."""
        return self.n_hours // HOURS_PER_DAY

    def has_missing(self) -> bool:
        """Return True if any consumption reading is NaN."""
        return bool(np.isnan(self.consumption).any())


@dataclass
class Dataset:
    """A benchmark input: ``n`` consumers with aligned hourly series.

    Internally stored as two ``(n, n_hours)`` float64 matrices plus the list
    of consumer ids, which is the layout the reference (numpy) kernels use.
    """

    consumer_ids: list[str]
    consumption: np.ndarray
    temperature: np.ndarray
    name: str = "dataset"
    _id_index: dict[str, int] = field(default_factory=dict, repr=False)

    def __post_init__(self) -> None:
        self.consumption = np.asarray(self.consumption, dtype=np.float64)
        self.temperature = np.asarray(self.temperature, dtype=np.float64)
        if self.consumption.ndim != 2:
            raise DataError(
                f"consumption must be (n, hours), got shape {self.consumption.shape}"
            )
        if self.consumption.shape != self.temperature.shape:
            raise DataError(
                "consumption and temperature shapes differ: "
                f"{self.consumption.shape} vs {self.temperature.shape}"
            )
        if len(self.consumer_ids) != self.consumption.shape[0]:
            raise DataError(
                f"{len(self.consumer_ids)} ids but "
                f"{self.consumption.shape[0]} consumption rows"
            )
        self._id_index = {cid: i for i, cid in enumerate(self.consumer_ids)}
        if len(self._id_index) != len(self.consumer_ids):
            raise DataError("consumer ids must be unique")

    @classmethod
    def from_consumers(
        cls, consumers: Sequence[ConsumerSeries], name: str = "dataset"
    ) -> "Dataset":
        """Build a dataset from individual consumer series of equal length."""
        if not consumers:
            raise DataError("cannot build a dataset from zero consumers")
        lengths = {c.n_hours for c in consumers}
        if len(lengths) != 1:
            raise DataError(f"consumers have differing lengths: {sorted(lengths)}")
        return cls(
            consumer_ids=[c.consumer_id for c in consumers],
            consumption=np.stack([c.consumption for c in consumers]),
            temperature=np.stack([c.temperature for c in consumers]),
            name=name,
        )

    @property
    def n_consumers(self) -> int:
        """Number of consumers (time series) in the dataset."""
        return int(self.consumption.shape[0])

    @property
    def n_hours(self) -> int:
        """Number of hourly readings per consumer."""
        return int(self.consumption.shape[1])

    def consumer(self, consumer_id: str) -> ConsumerSeries:
        """Return a single consumer's series by id."""
        try:
            row = self._id_index[consumer_id]
        except KeyError:
            raise DataError(f"unknown consumer id: {consumer_id!r}") from None
        return ConsumerSeries(
            consumer_id=consumer_id,
            consumption=self.consumption[row].copy(),
            temperature=self.temperature[row].copy(),
        )

    def __iter__(self) -> Iterator[ConsumerSeries]:
        for i, cid in enumerate(self.consumer_ids):
            yield ConsumerSeries(
                consumer_id=cid,
                consumption=self.consumption[i].copy(),
                temperature=self.temperature[i].copy(),
            )

    def __len__(self) -> int:
        return self.n_consumers

    def subset(self, n: int, name: str | None = None) -> "Dataset":
        """Return a dataset with the first ``n`` consumers (for size sweeps)."""
        if not 0 < n <= self.n_consumers:
            raise DataError(
                f"subset size {n} out of range 1..{self.n_consumers}"
            )
        return Dataset(
            consumer_ids=self.consumer_ids[:n],
            consumption=self.consumption[:n],
            temperature=self.temperature[:n],
            name=name or f"{self.name}[:{n}]",
        )

    def approx_csv_bytes(self) -> int:
        """Approximate size of this dataset serialized as reading-per-row CSV.

        Used to express benchmark x-axes in the paper's GB units; one row is
        roughly ``id,timestamp,consumption,temperature`` ~ 36 bytes.
        """
        return self.n_consumers * self.n_hours * 36
