"""Calendar arithmetic for one benchmark year of hourly readings.

The benchmark (paper, Section 3) fixes the input unit to *one year of hourly
measurements*: 365 x 24 = 8760 points per consumer.  All series in this
package are indexed by *hour of year* ``t`` in ``[0, 8760)``; these helpers
convert between that index, the day index and the hour of day.
"""

from __future__ import annotations

import numpy as np

HOURS_PER_DAY = 24
DAYS_PER_YEAR = 365
HOURS_PER_YEAR = HOURS_PER_DAY * DAYS_PER_YEAR  # 8760, as in the paper


def hour_of_day(t: int | np.ndarray) -> int | np.ndarray:
    """Return the hour of day ``[0, 24)`` for hour-of-year index ``t``."""
    return t % HOURS_PER_DAY


def day_index(t: int | np.ndarray) -> int | np.ndarray:
    """Return the day index ``[0, 365)`` for hour-of-year index ``t``."""
    return t // HOURS_PER_DAY


def hour_of_year(day: int | np.ndarray, hour: int | np.ndarray) -> int | np.ndarray:
    """Return the hour-of-year index for ``(day, hour-of-day)``."""
    return day * HOURS_PER_DAY + hour


def hours_grid(n_hours: int = HOURS_PER_YEAR) -> np.ndarray:
    """Return ``arange(n_hours)`` — the canonical time axis."""
    return np.arange(n_hours, dtype=np.int64)


def day_hour_matrix(values: np.ndarray) -> np.ndarray:
    """Reshape a flat hourly series into a ``(days, 24)`` matrix.

    The series length must be a multiple of 24.  This is the layout used by
    the PAR algorithm, which groups readings by hour of day.
    """
    values = np.asarray(values)
    if values.ndim != 1:
        raise ValueError(f"expected a 1-D series, got shape {values.shape}")
    if values.shape[0] % HOURS_PER_DAY != 0:
        raise ValueError(
            f"series length {values.shape[0]} is not a whole number of days"
        )
    return values.reshape(-1, HOURS_PER_DAY)
