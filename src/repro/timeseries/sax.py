"""SAX — Symbolic Aggregate approXimation of smart meter series.

The paper (Section 2.1) cites symbolic representation of smart meter time
series [27] as related work.  We implement classic SAX as an extension: a
series is z-normalized, reduced with Piecewise Aggregate Approximation (PAA)
and quantized against Gaussian breakpoints into a short string over an
alphabet of configurable size.  The module also provides the SAX MINDIST
lower bound, which lets similarity search prune candidate pairs cheaply —
an ablation bench uses it to accelerate the paper's Task 4.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.exceptions import DataError

#: Breakpoints that cut N(0, 1) into equal-probability regions, per alphabet
#: size.  Index a = alphabet size, values are the a-1 interior breakpoints.
_MAX_ALPHABET = 20


def gaussian_breakpoints(alphabet_size: int) -> np.ndarray:
    """Return the ``alphabet_size - 1`` equiprobable N(0,1) breakpoints."""
    if not 2 <= alphabet_size <= _MAX_ALPHABET:
        raise ValueError(
            f"alphabet size must be in [2, {_MAX_ALPHABET}], got {alphabet_size}"
        )
    # Inverse normal CDF via Acklam's rational approximation — scipy-free so
    # the core package only depends on numpy.
    probs = np.arange(1, alphabet_size) / alphabet_size
    return _norm_ppf(probs)


def _norm_ppf(p: np.ndarray) -> np.ndarray:
    """Inverse CDF of the standard normal (Acklam's approximation).

    Max absolute error ~1.15e-9 over (0, 1), far below what SAX needs.
    """
    p = np.asarray(p, dtype=np.float64)
    a = [-3.969683028665376e01, 2.209460984245205e02, -2.759285104469687e02,
         1.383577518672690e02, -3.066479806614716e01, 2.506628277459239e00]
    b = [-5.447609879822406e01, 1.615858368580409e02, -1.556989798598866e02,
         6.680131188771972e01, -1.328068155288572e01]
    c = [-7.784894002430293e-03, -3.223964580411365e-01, -2.400758277161838e00,
         -2.549732539343734e00, 4.374664141464968e00, 2.938163982698783e00]
    d = [7.784695709041462e-03, 3.224671290700398e-01, 2.445134137142996e00,
         3.754408661907416e00]
    p_low, p_high = 0.02425, 1 - 0.02425
    out = np.empty_like(p)

    low = p < p_low
    high = p > p_high
    mid = ~(low | high)

    if low.any():
        q = np.sqrt(-2 * np.log(p[low]))
        out[low] = (
            ((((c[0] * q + c[1]) * q + c[2]) * q + c[3]) * q + c[4]) * q + c[5]
        ) / ((((d[0] * q + d[1]) * q + d[2]) * q + d[3]) * q + 1)
    if mid.any():
        q = p[mid] - 0.5
        r = q * q
        out[mid] = (
            ((((a[0] * r + a[1]) * r + a[2]) * r + a[3]) * r + a[4]) * r + a[5]
        ) * q / (((((b[0] * r + b[1]) * r + b[2]) * r + b[3]) * r + b[4]) * r + 1)
    if high.any():
        q = np.sqrt(-2 * np.log(1 - p[high]))
        out[high] = -(
            ((((c[0] * q + c[1]) * q + c[2]) * q + c[3]) * q + c[4]) * q + c[5]
        ) / ((((d[0] * q + d[1]) * q + d[2]) * q + d[3]) * q + 1)
    return out


def znormalize(values: np.ndarray, epsilon: float = 1e-12) -> np.ndarray:
    """Z-normalize a series; a (near-)constant series maps to all zeros."""
    values = np.asarray(values, dtype=np.float64)
    std = values.std()
    if std < epsilon:
        return np.zeros_like(values)
    return (values - values.mean()) / std


def paa(values: np.ndarray, n_segments: int) -> np.ndarray:
    """Piecewise Aggregate Approximation: segment means of the series.

    Handles series lengths that are not a multiple of ``n_segments`` by
    weighting boundary points fractionally (the standard generalized PAA).
    """
    values = np.asarray(values, dtype=np.float64)
    n = values.size
    if n == 0:
        raise DataError("cannot PAA an empty series")
    if not 1 <= n_segments <= n:
        raise ValueError(f"n_segments must be in [1, {n}], got {n_segments}")
    if n % n_segments == 0:
        return values.reshape(n_segments, n // n_segments).mean(axis=1)
    # Generalized PAA: each of the n*n_segments "micro points" belongs to
    # exactly one segment.
    repeated = np.repeat(values, n_segments)
    return repeated.reshape(n_segments, n).mean(axis=1)


@dataclass(frozen=True)
class SaxEncoder:
    """Encode hourly series into SAX words.

    Parameters mirror the classic formulation: ``n_segments`` PAA segments
    and an ``alphabet_size``-letter alphabet (letters 'a', 'b', ...).
    """

    n_segments: int = 24
    alphabet_size: int = 6

    def __post_init__(self) -> None:
        gaussian_breakpoints(self.alphabet_size)  # validates alphabet size
        if self.n_segments < 1:
            raise ValueError("n_segments must be >= 1")

    @property
    def breakpoints(self) -> np.ndarray:
        """Interior breakpoints used for quantization."""
        return gaussian_breakpoints(self.alphabet_size)

    def symbols(self, values: np.ndarray) -> np.ndarray:
        """Return the SAX word as an int array in ``[0, alphabet_size)``."""
        reduced = paa(znormalize(values), self.n_segments)
        return np.searchsorted(self.breakpoints, reduced, side="left")

    def encode(self, values: np.ndarray) -> str:
        """Return the SAX word as a lowercase string, e.g. ``'abddca'``."""
        return "".join(chr(ord("a") + s) for s in self.symbols(values))

    def mindist(self, word_a: str, word_b: str, series_length: int) -> float:
        """SAX MINDIST lower bound on the Euclidean distance of the originals.

        Guaranteed to be <= the true Euclidean distance between the two
        z-normalized series, which makes it a sound pruning filter.
        """
        if len(word_a) != self.n_segments or len(word_b) != self.n_segments:
            raise DataError(
                f"words must have {self.n_segments} symbols, got "
                f"{len(word_a)} and {len(word_b)}"
            )
        bp = self.breakpoints
        sa = (
            np.frombuffer(word_a.encode("ascii"), dtype=np.uint8).astype(np.int64)
            - ord("a")
        )
        sb = (
            np.frombuffer(word_b.encode("ascii"), dtype=np.uint8).astype(np.int64)
            - ord("a")
        )
        out_of_range = (sa < 0) | (sa >= self.alphabet_size)
        out_of_range |= (sb < 0) | (sb >= self.alphabet_size)
        if out_of_range.any():
            raise DataError("word contains symbols outside the alphabet")
        lo = np.minimum(sa, sb)
        hi = np.maximum(sa, sb)
        # dist(cell i, cell j) = bp[hi-1] - bp[lo] when cells are not
        # adjacent; clip the indices so the masked-out branch stays in
        # bounds (np.where evaluates both sides).
        adjacent = hi - lo <= 1
        hi_idx = np.clip(hi - 1, 0, bp.size - 1)
        lo_idx = np.clip(lo, 0, bp.size - 1)
        cell = np.where(adjacent, 0.0, bp[hi_idx] - bp[lo_idx])
        return float(
            np.sqrt(series_length / self.n_segments) * np.sqrt((cell**2).sum())
        )
