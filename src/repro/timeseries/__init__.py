"""Hourly time-series substrate: calendar math, series types, data quality.

This subpackage contains everything the benchmark needs to represent a year
of hourly smart-meter readings: the hourly calendar (8760 points), the
consumption/temperature series containers, missing-data handling and the SAX
symbolic representation extension.
"""

from repro.timeseries.calendar import (
    DAYS_PER_YEAR,
    HOURS_PER_DAY,
    HOURS_PER_YEAR,
    day_index,
    hour_of_day,
    hour_of_year,
    hours_grid,
)
from repro.timeseries.series import ConsumerSeries, Dataset

__all__ = [
    "DAYS_PER_YEAR",
    "HOURS_PER_DAY",
    "HOURS_PER_YEAR",
    "ConsumerSeries",
    "Dataset",
    "day_index",
    "hour_of_day",
    "hour_of_year",
    "hours_grid",
]
