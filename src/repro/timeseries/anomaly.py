"""Online anomaly detection for smart meter streams.

The paper's future work (Section 6) names "alerts due to unusual
consumption readings" as the real-time application to build next.  This is
the library-grade detector behind ``examples/streaming_alerts.py``:

* a per-hour-of-day expected-consumption model, exponentially weighted so
  it tracks seasonal drift;
* a heating-degree temperature correction, so cold snaps do not page the
  on-call;
* robust variance tracking (anomalous readings barely update the model,
  preventing an outage from teaching the model that zero is normal);
* a warm-up gate before any alerts fire.

One :class:`MeterAnomalyDetector` per meter; O(1) state and time per
reading.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.exceptions import DataError
from repro.timeseries.calendar import HOURS_PER_DAY


@dataclass(frozen=True)
class Alert:
    """One anomalous reading."""

    t: int
    kwh: float
    expected: float
    z_score: float

    @property
    def kind(self) -> str:
        """``"spike"`` for excess consumption, ``"drop"`` for a deficit."""
        return "spike" if self.z_score > 0 else "drop"


@dataclass(frozen=True)
class DetectorConfig:
    """Tuning knobs of the detector."""

    #: Exponential update rate for the per-hour mean/variance.
    alpha: float = 0.05
    #: Alert threshold in robust standard deviations.
    z_threshold: float = 5.0
    #: Days of history before alerts may fire.
    warmup_days: int = 14
    #: Heating response correction (kWh per degree below the balance point).
    heating_coefficient: float = 0.05
    heating_balance_c: float = 15.0
    #: Variance floor, so a flat baseline cannot divide by ~zero.
    min_std: float = 0.05
    #: Update-rate divisor applied to anomalous readings (robustness).
    outlier_discount: float = 10.0

    def __post_init__(self) -> None:
        if not 0.0 < self.alpha <= 1.0:
            raise ValueError(f"alpha must be in (0, 1], got {self.alpha}")
        if self.z_threshold <= 0:
            raise ValueError("z_threshold must be positive")
        if self.min_std <= 0:
            raise ValueError("min_std must be positive")
        if self.outlier_discount < 1:
            raise ValueError("outlier_discount must be >= 1")


class MeterAnomalyDetector:
    """Streaming per-meter anomaly detector."""

    def __init__(self, config: DetectorConfig | None = None) -> None:
        self.config = config or DetectorConfig()
        self._mean = np.zeros(HOURS_PER_DAY)
        self._var = np.ones(HOURS_PER_DAY)
        self._seen = np.zeros(HOURS_PER_DAY, dtype=np.int64)
        self._readings = 0

    @property
    def is_warm(self) -> bool:
        """True once the warm-up window has passed."""
        return self._readings >= self.config.warmup_days * HOURS_PER_DAY

    def _heating(self, temperature: float) -> float:
        cfg = self.config
        return cfg.heating_coefficient * max(
            0.0, cfg.heating_balance_c - temperature
        )

    def expected(self, hour: int, temperature: float) -> float:
        """Expected consumption for an hour of day at a temperature.

        The learned per-hour mean tracks the *temperature-corrected*
        baseline (heating load is subtracted before updating), so the
        correction is added back exactly once here.
        """
        if not 0 <= hour < HOURS_PER_DAY:
            raise DataError(f"hour must be in [0, 24), got {hour}")
        return float(self._mean[hour]) + self._heating(temperature)

    def observe(self, t: int, kwh: float, temperature: float) -> Alert | None:
        """Feed one reading; returns an :class:`Alert` if it is anomalous."""
        if not np.isfinite(kwh):
            raise DataError(f"non-finite reading at t={t}: {kwh}")
        cfg = self.config
        hour = t % HOURS_PER_DAY
        baseline = kwh - self._heating(temperature)
        expected = self.expected(hour, temperature)
        std = max(cfg.min_std, float(np.sqrt(self._var[hour])))
        z = (kwh - expected) / std
        was_warm = self.is_warm

        is_outlier = abs(z) >= cfg.z_threshold
        weight = cfg.alpha / (cfg.outlier_discount if is_outlier else 1.0)
        if self._seen[hour] == 0:
            self._mean[hour] = baseline
            self._var[hour] = max(cfg.min_std**2, (0.3 * max(kwh, 0.1)) ** 2)
        else:
            delta = baseline - self._mean[hour]
            self._mean[hour] += weight * delta
            self._var[hour] = (1 - weight) * (
                self._var[hour] + weight * delta * delta
            )
        self._seen[hour] += 1
        self._readings += 1

        if was_warm and is_outlier:
            return Alert(t=t, kwh=kwh, expected=expected, z_score=float(z))
        return None

    def scan(
        self, consumption: np.ndarray, temperature: np.ndarray, start_t: int = 0
    ) -> list[Alert]:
        """Feed a whole series; returns all alerts in order."""
        consumption = np.asarray(consumption, dtype=np.float64)
        temperature = np.asarray(temperature, dtype=np.float64)
        if consumption.shape != temperature.shape or consumption.ndim != 1:
            raise DataError("consumption/temperature must be equal-length 1-D")
        alerts: list[Alert] = []
        for i in range(consumption.size):
            alert = self.observe(
                start_t + i, float(consumption[i]), float(temperature[i])
            )
            if alert is not None:
                alerts.append(alert)
        return alerts
