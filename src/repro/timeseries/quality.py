"""Missing-data handling for smart meter series.

The paper (Section 2.1) cites meter-data quality — specifically handling
missing readings [18] — as an orthogonal but important issue.  Real meter
feeds drop readings during outages and backhaul failures, and every platform
in the benchmark assumes complete series, so this module provides the
cleaning step a deployment would run first.

Three imputation strategies are implemented:

* ``linear`` — linear interpolation between the nearest present readings,
  the standard choice for short gaps;
* ``hourly_mean`` — replace each missing reading with the consumer's mean
  consumption at that hour of day, better for long gaps because consumption
  is strongly periodic;
* ``hybrid`` — linear for gaps up to ``max_linear_gap`` hours, hourly mean
  beyond that (the policy recommended by [18]-style MDM systems).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.exceptions import DataError
from repro.timeseries.calendar import HOURS_PER_DAY

_STRATEGIES = ("linear", "hourly_mean", "hybrid")


@dataclass(frozen=True)
class GapReport:
    """Summary of the missing data found in one series."""

    n_missing: int
    n_gaps: int
    longest_gap: int
    missing_fraction: float

    @property
    def is_complete(self) -> bool:
        """True when the series has no missing readings."""
        return self.n_missing == 0


def find_gaps(values: np.ndarray) -> list[tuple[int, int]]:
    """Return ``[(start, length), ...]`` for each run of NaNs in ``values``."""
    isnan = np.isnan(np.asarray(values, dtype=np.float64))
    if not isnan.any():
        return []
    # Boundaries of NaN runs: +1 where a run starts, -1 where it ends.
    padded = np.concatenate(([False], isnan, [False]))
    diff = np.diff(padded.astype(np.int8))
    starts = np.flatnonzero(diff == 1)
    ends = np.flatnonzero(diff == -1)
    return [(int(s), int(e - s)) for s, e in zip(starts, ends)]


def gap_report(values: np.ndarray) -> GapReport:
    """Describe the missing data in a series."""
    values = np.asarray(values, dtype=np.float64)
    gaps = find_gaps(values)
    n_missing = int(sum(length for _, length in gaps))
    return GapReport(
        n_missing=n_missing,
        n_gaps=len(gaps),
        longest_gap=max((length for _, length in gaps), default=0),
        missing_fraction=n_missing / values.size if values.size else 0.0,
    )


def _hourly_means(values: np.ndarray) -> np.ndarray:
    """Mean of the present readings at each hour of day (NaN-aware)."""
    n = values.size
    hours = np.arange(n) % HOURS_PER_DAY
    means = np.empty(HOURS_PER_DAY)
    for h in range(HOURS_PER_DAY):
        at_hour = values[hours == h]
        present = at_hour[~np.isnan(at_hour)]
        means[h] = present.mean() if present.size else np.nan
    return means


def _interp_linear(values: np.ndarray) -> np.ndarray:
    present = ~np.isnan(values)
    idx = np.arange(values.size)
    out = values.copy()
    out[~present] = np.interp(idx[~present], idx[present], values[present])
    return out


def impute(
    values: np.ndarray,
    strategy: str = "hybrid",
    max_linear_gap: int = 6,
) -> np.ndarray:
    """Fill NaN readings in an hourly series and return a new array.

    ``strategy`` is one of ``linear``, ``hourly_mean`` or ``hybrid``.  The
    series must contain at least one present reading, and for the hourly-mean
    strategies at least one present reading at each hour of day that has a
    gap longer than ``max_linear_gap``.
    """
    if strategy not in _STRATEGIES:
        raise ValueError(f"unknown strategy {strategy!r}; choose from {_STRATEGIES}")
    values = np.asarray(values, dtype=np.float64)
    if values.ndim != 1:
        raise DataError(f"expected a 1-D series, got shape {values.shape}")
    isnan = np.isnan(values)
    if not isnan.any():
        return values.copy()
    if isnan.all():
        raise DataError("cannot impute a series with no present readings")

    if strategy == "linear":
        return _interp_linear(values)

    means = _hourly_means(values)
    hours = np.arange(values.size) % HOURS_PER_DAY
    if strategy == "hourly_mean":
        out = values.copy()
        fill = means[hours[isnan]]
        if np.isnan(fill).any():
            raise DataError(
                "some hour of day has no present readings; "
                "hourly_mean imputation is impossible"
            )
        out[isnan] = fill
        return out

    # hybrid: short gaps linearly, long gaps from the hourly profile.
    out = values.copy()
    for start, length in find_gaps(values):
        if length > max_linear_gap:
            sl = slice(start, start + length)
            fill = means[hours[sl]]
            if np.isnan(fill).any():
                raise DataError(
                    "some hour of day has no present readings; "
                    "hybrid imputation fell back to an empty hourly mean"
                )
            out[sl] = fill
    return _interp_linear(out)
