"""Incremental Task 1: exact mergeable equi-width histogram state.

The batch kernel derives each meter's bucket range from its own min/max,
so a new reading can *move the edges* — which is why an approximate
sketch (:class:`repro.streaming.sketches.StreamingHistogram`) is the
classic streaming answer.  This state is exact instead, exploiting a
property of the benchmark task: the range only changes when the running
min/max changes, which for metered data happens O(log n) times over a
window, not O(n).  So:

* readings inside the current range are folded in O(1) amortized via
  :func:`repro.batched.histogram.numpy_bucket_codes` — the *same* bucket
  assignment ``np.histogram`` performs against the same edges, so folded
  counts are bit-identical to batch counts by construction;
* readings that extend a meter's min/max flag that meter for a lazy
  *rebin* from the window buffer (the plane retains the open window's
  readings anyway), deferred until the next query or window close.

At window close the result equals
:func:`repro.core.histogram.equi_width_histogram` per meter **bit for
bit** — same edges (same ``effective_range`` + ``np.linspace``), same
counts (every reading bucketed by numpy's own assignment rule).
"""

from __future__ import annotations

import numpy as np

from repro.batched.histogram import batched_histograms, numpy_bucket_codes
from repro.core.histogram import HistogramResult, equi_width_histogram
from repro.exceptions import DataError


class StreamingHistogramState:
    """Exact incremental equi-width histograms for a cohort of meters."""

    def __init__(self, n_consumers: int, n_buckets: int = 10) -> None:
        if n_buckets < 1:
            raise ValueError(f"n_buckets must be >= 1, got {n_buckets}")
        self.n = n_consumers
        self.n_buckets = n_buckets
        self.counts = np.zeros((n_consumers, n_buckets), dtype=np.int64)
        #: Raw running min/max of each meter's readings.
        self.lo_raw = np.full(n_consumers, np.inf)
        self.hi_raw = np.full(n_consumers, -np.inf)
        #: Effective range and edges in force (post degenerate widening).
        self.edges = np.zeros((n_consumers, n_buckets + 1))
        self._lo_eff = np.zeros(n_consumers)
        self._hi_eff = np.ones(n_consumers)
        #: Meters whose edges are stale and need a rebin from the buffer.
        self.needs_rebin = np.ones(n_consumers, dtype=bool)
        self.n_seen = np.zeros(n_consumers, dtype=np.int64)

    def fold(self, consumers: np.ndarray, values: np.ndarray) -> None:
        """Fold a batch of readings into the per-meter counts.

        Meters whose range a new reading extends (including first-ever
        readings) are marked for a lazy rebin; their counts stop being
        maintained until :meth:`rebin` resets them from the buffer.
        """
        if consumers.shape != values.shape:
            raise DataError("consumers and values must be equal-length")
        # bincount beats np.add.at by an order of magnitude on the hot path.
        self.n_seen += np.bincount(consumers, minlength=self.n)
        # Range extension check against the raw (pre-widening) bounds.
        extends = (values < self.lo_raw[consumers]) | (
            values > self.hi_raw[consumers]
        )
        if extends.any():
            np.minimum.at(self.lo_raw, consumers[extends], values[extends])
            np.maximum.at(self.hi_raw, consumers[extends], values[extends])
            self.needs_rebin[consumers[extends]] = True
        live = ~self.needs_rebin[consumers]
        if not live.any():
            return
        cons = consumers[live]
        vals = values[live]
        codes = numpy_bucket_codes(
            vals,
            self._lo_eff[cons],
            self._hi_eff[cons],
            self.edges[cons],
            self.n_buckets,
        )
        self.counts += np.bincount(
            cons * self.n_buckets + codes, minlength=self.n * self.n_buckets
        ).reshape(self.n, self.n_buckets)

    def unfold(self, consumers: np.ndarray) -> None:
        """Forget maintained counts for meters whose past readings changed
        (a duplicate overwrite or a revision): they must rebin."""
        self.needs_rebin[consumers] = True

    def rebin(self, consumer: int, values: np.ndarray) -> None:
        """Rebuild one meter's histogram from its full current readings."""
        ref = equi_width_histogram(values, self.n_buckets)
        self.counts[consumer] = ref.counts
        self.edges[consumer] = ref.edges
        self.lo_raw[consumer] = values.min()
        self.hi_raw[consumer] = values.max()
        self._lo_eff[consumer] = ref.edges[0]
        self._hi_eff[consumer] = ref.edges[-1]
        self.n_seen[consumer] = values.size
        self.needs_rebin[consumer] = False

    def rebin_many(self, consumers: np.ndarray, rows: np.ndarray) -> None:
        """Vectorized :meth:`rebin` for many meters at once (close path).

        ``rows`` holds the meters' full current readings, one row per
        entry of ``consumers``.  Uses the batched Task 1 kernel, which is
        bit-identical to the per-meter reference.
        """
        if consumers.size == 0:
            return
        results = batched_histograms(rows, self.n_buckets)
        for c, ref in zip(consumers, results):
            self.counts[c] = ref.counts
            self.edges[c] = ref.edges
        self.lo_raw[consumers] = rows.min(axis=1)
        self.hi_raw[consumers] = rows.max(axis=1)
        self._lo_eff[consumers] = self.edges[consumers, 0]
        self._hi_eff[consumers] = self.edges[consumers, -1]
        self.n_seen[consumers] = rows.shape[1]
        self.needs_rebin[consumers] = False

    def result(self, consumer: int) -> HistogramResult:
        """The current histogram of one meter (edges/counts copies)."""
        if self.needs_rebin[consumer]:
            raise DataError(
                f"meter {consumer} has a pending rebin; the plane must "
                "refresh it from the window buffer first"
            )
        return HistogramResult(
            edges=self.edges[consumer].copy(),
            counts=self.counts[consumer].copy(),
        )
