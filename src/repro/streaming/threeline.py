"""Incremental Task 2: dirty-flagged lazy 3-line refits.

The 3-line bands are built on *order statistics* (per-temperature-bin
10th/90th percentiles), which admit no exact O(1)-per-reading update —
a new reading can shift a bin's percentile by an arbitrary amount.  The
streaming answer is therefore *lazy*: folding a reading costs O(1)
(mark the meter dirty), and the model is refit only when somebody asks,
from the window buffer the plane retains anyway.  Two refit paths:

* :meth:`StreamingThreeLineState.refit` — the exact reference fit
  (:func:`repro.core.threeline.fit_three_lines`), O(points^2) breakpoint
  search with O(1)-per-candidate prefix-sum SSE;
* :meth:`StreamingThreeLineState.quick_refit` — an O(breakpoints) update
  that *reuses the previous model's breakpoints*: recompute the
  percentile points, then fit just the three segments per band at the
  cached breakpoint positions with :class:`repro.core.stats.PrefixSumOLS`
  (three O(1) segment fits after an O(points) prefix pass), skipping the
  quadratic search.  Mid-window this is a documented approximation —
  breakpoints drift as data accumulates — and the state re-runs the full
  search whenever the quick fit's SSE degrades past
  :data:`QUICK_REFIT_SSE_SLACK` of the last exact fit's.

At window close the plane bypasses both and runs the *batched* stacked
fit (:func:`repro.batched.threeline.batched_fit_bands`), which is
bit-identical to the per-meter reference — so closed-window streaming
results carry the same bit-identity guarantee as every other engine.
"""

from __future__ import annotations

import numpy as np

from repro.core.stats import PrefixSumOLS
from repro.core.threeline import (
    PiecewiseLines,
    ThreeLineConfig,
    ThreeLineModel,
    _make_continuous,
    _percentile_points,
    fit_three_lines,
)

#: A quick (cached-breakpoint) refit whose total SSE exceeds the last
#: exact fit's by more than this factor triggers a full exact refit —
#: the breakpoints have drifted too far for the shortcut to be honest.
QUICK_REFIT_SSE_SLACK = 2.0


class StreamingThreeLineState:
    """Lazily-refit 3-line models for a cohort of meters."""

    def __init__(
        self, n_consumers: int, config: ThreeLineConfig | None = None
    ) -> None:
        self.n = n_consumers
        self.config = config or ThreeLineConfig()
        #: True where the cached model is stale w.r.t. the buffer.
        self.dirty = np.ones(n_consumers, dtype=bool)
        self.models: list[ThreeLineModel | None] = [None] * n_consumers
        #: Last exact fit's per-band SSE, for the quick-refit honesty check.
        self._exact_sse: list[tuple[float, float] | None] = [None] * n_consumers
        self.full_refits = 0
        self.quick_refits = 0

    def mark_dirty(self, consumers: np.ndarray) -> None:
        """O(1)-amortized fold: new readings invalidate cached models."""
        self.dirty[consumers] = True

    def set_model(self, consumer: int, model: ThreeLineModel) -> None:
        """Install an externally-computed exact model (window close path)."""
        self.models[consumer] = model
        self._exact_sse[consumer] = (
            model.band_lower.sse,
            model.band_upper.sse,
        )
        self.dirty[consumer] = False

    def refit(
        self, consumer: int, consumption: np.ndarray, temperature: np.ndarray
    ) -> ThreeLineModel:
        """Exact refit of one meter from its current window readings."""
        model = fit_three_lines(consumption, temperature, self.config)
        self.full_refits += 1
        self.set_model(consumer, model)
        return model

    def quick_refit(
        self, consumer: int, consumption: np.ndarray, temperature: np.ndarray
    ) -> ThreeLineModel:
        """O(breakpoints) approximate refit reusing cached breakpoints.

        Falls back to the exact :meth:`refit` when there is no cached
        model, the point set no longer supports the cached breakpoints,
        or the shortcut's SSE fails the honesty check.
        """
        prev = self.models[consumer]
        prev_sse = self._exact_sse[consumer]
        if prev is None or prev_sse is None:
            return self.refit(consumer, consumption, temperature)
        cfg = self.config
        lower_pts, upper_pts = _percentile_points(consumption, temperature, cfg)
        n_pts = lower_pts.temps.size
        min_pts = cfg.min_segment_points
        if n_pts < 3 * min_pts:
            return self.refit(consumer, consumption, temperature)

        def band(points, cached: tuple[float, float], exact_sse: float):
            temps = points.temps
            i = int(np.clip(np.searchsorted(temps, cached[0]),
                            min_pts, n_pts - 2 * min_pts))
            j = int(np.clip(np.searchsorted(temps, cached[1]),
                            i + min_pts, n_pts - min_pts))
            weights = points.counts if cfg.weight_by_count else None
            ols = PrefixSumOLS(temps, points.values, weights)
            left, _ = ols.fit(0, i)
            mid, _ = ols.fit(i, j)
            right, _ = ols.fit(j, n_pts)
            sse = ols.sse(0, i) + ols.sse(i, j) + ols.sse(j, n_pts)
            if sse > QUICK_REFIT_SSE_SLACK * max(exact_sse, 1e-12):
                return None
            lines, bps, adjusted = _make_continuous(
                (left, mid, right), points, i, j
            )
            return PiecewiseLines(lines, bps, sse, adjusted)

        band_lower = band(lower_pts, prev.band_lower.breakpoints, prev_sse[0])
        band_upper = band(upper_pts, prev.band_upper.breakpoints, prev_sse[1])
        if band_lower is None or band_upper is None:
            return self.refit(consumer, consumption, temperature)

        temps = lower_pts.temps
        candidates = np.array(
            [temps[0], band_lower.breakpoints[0], band_lower.breakpoints[1],
             temps[-1]]
        )
        model = ThreeLineModel(
            band_upper=band_upper,
            band_lower=band_lower,
            heating_gradient=float(-band_upper.lines[0].slope),
            cooling_gradient=float(band_upper.lines[2].slope),
            base_load=float(band_lower.predict(candidates).min()),
            temperature_range=(float(temps[0]), float(temps[-1])),
        )
        self.quick_refits += 1
        self.models[consumer] = model  # approximate: keep _exact_sse as-is
        self.dirty[consumer] = False
        return model
