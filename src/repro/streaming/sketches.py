"""Streaming (one-pass) approximate sketches for meter data.

The paper's future work (Section 6) calls for "real-time applications using
high-frequency smart meters ... using data stream processing technologies".
The exact incremental counterparts of the four benchmark tasks live in the
sibling modules (:mod:`repro.streaming.window` and friends); the sketches
here are the *approximate* O(1)-memory building blocks — useful for alerting
and monitoring where a bounded-memory estimate beats an exact window:

* :class:`OnlineStats` — Welford mean/variance;
* :class:`P2Quantile` — the P-squared streaming quantile estimator
  (Jain & Chlamtac), for percentile alerts without storing readings;
* :class:`StreamingHistogram` — the Ben-Haim & Tom-Tov merging histogram,
  which is what Hive's built-in ``histogram_numeric`` implements, so this
  doubles as the approximate counterpart of benchmark Task 1;
* :class:`OnlineHourlyProfile` — exponentially weighted per-hour-of-day
  consumption profile, the streaming counterpart of the PAR daily profile.
"""

from __future__ import annotations

import bisect
import math
from dataclasses import dataclass

import numpy as np

from repro.exceptions import DataError
from repro.timeseries.calendar import HOURS_PER_DAY


class OnlineStats:
    """Streaming count/mean/variance (Welford's algorithm)."""

    def __init__(self) -> None:
        self.n = 0
        self._mean = 0.0
        self._m2 = 0.0

    def update(self, value: float) -> None:
        """Fold one observation in."""
        self.n += 1
        delta = value - self._mean
        self._mean += delta / self.n
        self._m2 += delta * (value - self._mean)

    @property
    def mean(self) -> float:
        """Running mean (0.0 before any data)."""
        return self._mean

    @property
    def variance(self) -> float:
        """Sample variance (requires n >= 2)."""
        if self.n < 2:
            raise DataError("variance needs at least two observations")
        return self._m2 / (self.n - 1)

    @property
    def std(self) -> float:
        """Sample standard deviation."""
        return math.sqrt(self.variance)

    def merge(self, other: "OnlineStats") -> "OnlineStats":
        """Combine two independent accumulators (parallel streams)."""
        if other.n == 0:
            return self
        if self.n == 0:
            self.n, self._mean, self._m2 = other.n, other._mean, other._m2
            return self
        total = self.n + other.n
        delta = other._mean - self._mean
        self._m2 += other._m2 + delta * delta * self.n * other.n / total
        self._mean += delta * other.n / total
        self.n = total
        return self


class P2Quantile:
    """The P-squared algorithm: streaming estimation of one quantile.

    Keeps five markers whose positions are adjusted with parabolic
    interpolation; memory is O(1) regardless of stream length.
    """

    def __init__(self, quantile: float) -> None:
        if not 0.0 < quantile < 1.0:
            raise ValueError(f"quantile must be in (0, 1), got {quantile}")
        self.quantile = quantile
        self._initial: list[float] = []
        self._heights: list[float] = []
        self._positions: list[float] = []
        self._desired: list[float] = []
        self._increments: list[float] = []
        self.n = 0

    def update(self, value: float) -> None:
        """Fold one observation in."""
        self.n += 1
        if len(self._initial) < 5:
            bisect.insort(self._initial, value)
            if len(self._initial) == 5:
                q = self.quantile
                self._heights = list(self._initial)
                self._positions = [1.0, 2.0, 3.0, 4.0, 5.0]
                self._desired = [1.0, 1 + 2 * q, 1 + 4 * q, 3 + 2 * q, 5.0]
                self._increments = [0.0, q / 2, q, (1 + q) / 2, 1.0]
            return
        h = self._heights
        pos = self._positions
        if value < h[0]:
            h[0] = value
            cell = 0
        elif value >= h[4]:
            h[4] = value
            cell = 3
        else:
            cell = 0
            while cell < 3 and value >= h[cell + 1]:
                cell += 1
        for i in range(cell + 1, 5):
            pos[i] += 1.0
        for i in range(5):
            self._desired[i] += self._increments[i]
        # Adjust interior markers.
        for i in range(1, 4):
            d = self._desired[i] - pos[i]
            if (d >= 1.0 and pos[i + 1] - pos[i] > 1.0) or (
                d <= -1.0 and pos[i - 1] - pos[i] < -1.0
            ):
                step = 1.0 if d >= 1.0 else -1.0
                candidate = self._parabolic(i, step)
                if h[i - 1] < candidate < h[i + 1]:
                    h[i] = candidate
                else:  # fall back to linear interpolation
                    j = i + int(step)
                    h[i] += step * (h[j] - h[i]) / (pos[j] - pos[i])
                pos[i] += step

    def _parabolic(self, i: int, step: float) -> float:
        h, pos = self._heights, self._positions
        return h[i] + step / (pos[i + 1] - pos[i - 1]) * (
            (pos[i] - pos[i - 1] + step) * (h[i + 1] - h[i]) / (pos[i + 1] - pos[i])
            + (pos[i + 1] - pos[i] - step) * (h[i] - h[i - 1]) / (pos[i] - pos[i - 1])
        )

    @property
    def value(self) -> float:
        """Current quantile estimate."""
        if self.n == 0:
            raise DataError("no observations yet")
        if len(self._initial) < 5:
            data = self._initial
            rank = self.quantile * (len(data) - 1)
            lo = int(rank)
            hi = min(lo + 1, len(data) - 1)
            frac = rank - lo
            return data[lo] * (1 - frac) + data[hi] * frac
        return self._heights[2]


@dataclass(frozen=True)
class _Centroid:
    position: float
    count: float


class StreamingHistogram:
    """Ben-Haim & Tom-Tov merging histogram (Hive's ``histogram_numeric``).

    Maintains at most ``max_bins`` (position, count) centroids; inserting a
    value adds a unit centroid and merges the two closest.  Supports
    merging with other sketches (for distributed streams) and querying the
    approximate count below a threshold.
    """

    def __init__(self, max_bins: int = 32) -> None:
        if max_bins < 2:
            raise ValueError(f"max_bins must be >= 2, got {max_bins}")
        self.max_bins = max_bins
        self._bins: list[_Centroid] = []
        self.n = 0

    def update(self, value: float) -> None:
        """Fold one observation in."""
        self.n += 1
        positions = [b.position for b in self._bins]
        idx = bisect.bisect_left(positions, value)
        if idx < len(self._bins) and self._bins[idx].position == value:
            old = self._bins[idx]
            self._bins[idx] = _Centroid(old.position, old.count + 1)
        else:
            self._bins.insert(idx, _Centroid(value, 1.0))
            self._shrink()

    def merge(self, other: "StreamingHistogram") -> "StreamingHistogram":
        """Absorb another sketch."""
        for b in other._bins:
            positions = [c.position for c in self._bins]
            idx = bisect.bisect_left(positions, b.position)
            self._bins.insert(idx, b)
        self.n += other.n
        self._shrink()
        return self

    def _shrink(self) -> None:
        while len(self._bins) > self.max_bins:
            gaps = [
                self._bins[i + 1].position - self._bins[i].position
                for i in range(len(self._bins) - 1)
            ]
            i = int(np.argmin(gaps))
            a, b = self._bins[i], self._bins[i + 1]
            total = a.count + b.count
            merged = _Centroid(
                (a.position * a.count + b.position * b.count) / total, total
            )
            self._bins[i : i + 2] = [merged]

    @property
    def bins(self) -> list[tuple[float, float]]:
        """Current (position, count) centroids in position order."""
        return [(b.position, b.count) for b in self._bins]

    def count_below(self, threshold: float) -> float:
        """Approximate number of observations <= ``threshold``.

        The standard Ben-Haim & Tom-Tov *sum* procedure: full counts for
        centroids well below the threshold, half of the straddling
        centroid, and trapezoidal interpolation between the straddling
        pair.
        """
        if not self._bins:
            return 0.0
        if threshold < self._bins[0].position:
            return 0.0
        if threshold >= self._bins[-1].position:
            return float(self.n)
        # Find i with position_i <= threshold < position_{i+1}.
        positions = [b.position for b in self._bins]
        i = bisect.bisect_right(positions, threshold) - 1
        left, right = self._bins[i], self._bins[i + 1]
        span = right.position - left.position
        frac = (threshold - left.position) / span if span > 0 else 0.0
        mb = left.count + (right.count - left.count) * frac
        total = sum(b.count for b in self._bins[:i])
        total += left.count / 2.0
        total += (left.count + mb) * frac / 2.0
        return float(total)


class OnlineHourlyProfile:
    """Exponentially weighted per-hour-of-day profile (streaming PAR-lite).

    Feed readings in time order; ``profile`` converges to the recent
    typical consumption per hour of day, discounting the past with rate
    ``alpha`` per observation of that hour.
    """

    def __init__(self, alpha: float = 0.05) -> None:
        if not 0.0 < alpha <= 1.0:
            raise ValueError(f"alpha must be in (0, 1], got {alpha}")
        self.alpha = alpha
        self._profile = np.zeros(HOURS_PER_DAY)
        self._seen = np.zeros(HOURS_PER_DAY, dtype=np.int64)

    def update(self, t: int, value: float) -> None:
        """Fold in the reading at hour-of-year index ``t``."""
        hour = t % HOURS_PER_DAY
        if self._seen[hour] == 0:
            self._profile[hour] = value
        else:
            self._profile[hour] += self.alpha * (value - self._profile[hour])
        self._seen[hour] += 1

    @property
    def profile(self) -> np.ndarray:
        """Current 24-value profile (copies)."""
        return self._profile.copy()

    def is_warm(self, min_days: int = 7) -> bool:
        """True once every hour of day has at least ``min_days`` samples."""
        return bool((self._seen >= min_days).all())
