"""Closed windows land in the partitioned v2 store, exactly once.

:class:`StoreSink` is the bridge between the streaming plane and the
at-rest storage layer: each finalized :class:`~repro.streaming.window.
WindowResult` becomes whole-day writes on a
:class:`~repro.columnar.partstore.PartitionedStore` table.  Three write
paths, keyed on the result's monotonic **epoch**:

* **replay** — ``result.epoch <= table.last_epoch``: the write already
  committed before a crash; skip.  This — not ``on_conflict="skip"`` —
  is the exactly-once guard: crash-replay can redeliver any emission,
  and the epoch says precisely whether the store has seen it.
* **first close** (``revision == 0``) — the first window creates the
  table (:meth:`~repro.columnar.partstore.PartitionedStore.
  ingest_dataset`), later windows append with an explicit ``start_day``
  and ``on_conflict="error"``: after the epoch guard, any remaining
  overlap is a real bug and must raise, never be silently skipped.
* **revision** (``revision > 0``) — an applied-late re-emission of an
  already-written window routes through :meth:`~repro.columnar.
  partstore.PartitionedStore.overwrite_days`, an explicit atomic
  replacement of the window's day range.  Earlier versions recognized
  revisions as overlaps and dropped them via ``on_conflict="skip"`` —
  which made a *genuinely revised* window indistinguishable from a
  duplicate and silently discarded the late data.  The epoch
  disambiguates: a replayed revision is skipped, a new one overwrites.

The sink requires every emitted window to cover the same meter cohort
the table was created with: windows that *quarantined* meters at close
cannot be appended (the v2 append contract is all-meters whole days) and
raise — run the plane under ``repair`` when a store sink is attached,
which the constructor checks up front.
"""

from __future__ import annotations

from repro.columnar.partstore import PartitionedStore
from repro.exceptions import StreamingError
from repro.streaming.window import StreamingPlane, WindowResult
from repro.timeseries.calendar import HOURS_PER_DAY


class StoreSink:
    """Write each emitted window to one v2 partitioned table, exactly once."""

    def __init__(
        self,
        store: PartitionedStore,
        table: str = "stream",
        plane: StreamingPlane | None = None,
    ) -> None:
        self.store = store
        self.table = table
        #: Window indices already written (observability; the epoch
        #: guard, not this list, is what makes writes exactly-once).
        self.written: list[int] = []
        if plane is not None and plane.ladder.quarantines:
            raise StreamingError(
                "a store sink needs full cohorts per window; run the plane "
                "under the 'repair' or 'strict' ladder, not 'quarantine'"
            )

    def write(self, result: WindowResult) -> None:
        """Persist one emitted window (idempotent on redelivery)."""
        if result.dropped:
            raise StreamingError(
                f"window {result.index} dropped {len(result.dropped)} "
                "meters at close; cannot append a partial cohort to "
                f"table {self.table!r}"
            )
        if self.table not in self.store.list_tables():
            if result.day0 != 0 or result.revision != 0:
                raise StreamingError(
                    f"first window written to table {self.table!r} must "
                    f"be revision 0 starting at day 0, got day "
                    f"{result.day0} revision {result.revision} "
                    f"(window {result.index})"
                )
            self.store.ingest_dataset(
                result.dataset, name=self.table, epoch=result.epoch
            )
            self._mark(result.index)
            return
        table = self.store.open(self.table)
        if result.epoch >= 0 and result.epoch <= table.last_epoch:
            return  # crash-replay redelivery: already committed
        end_hour = (result.day0 + result.n_days) * HOURS_PER_DAY
        if result.revision > 0 or end_hour <= table.n_hours:
            # A revision of days the table already holds: explicit
            # atomic overwrite, never a silent skip.
            self.store.overwrite_days(
                self.table,
                result.dataset,
                start_day=result.day0,
                epoch=result.epoch,
            )
        else:
            self.store.append_days(
                self.table,
                result.dataset,
                start_day=result.day0,
                on_conflict="error",
                epoch=result.epoch,
            )
        self._mark(result.index)

    def _mark(self, index: int) -> None:
        if index not in self.written:
            self.written.append(index)

    def drain(self, results: list[WindowResult]) -> int:
        """Write a batch of emissions (the return of ``plane.ingest``);
        returns how many were written."""
        for result in results:
            self.write(result)
        return len(results)
