"""Closed windows land in the partitioned v2 store.

:class:`StoreSink` is the bridge between the streaming plane and the
at-rest storage layer: each finalized :class:`~repro.streaming.window.
WindowResult` becomes whole-day appends on a
:class:`~repro.columnar.partstore.PartitionedStore` table — the first
window creates the table (:meth:`~repro.columnar.partstore.
PartitionedStore.ingest_dataset`), later windows ride
:meth:`~repro.columnar.partstore.PartitionedStore.append_days` with an
explicit ``start_day`` so redelivered windows (an applied-late revision
re-emitting window ``i``) are recognized as overlaps instead of being
double-appended — exactly the conflict the ``start_day``/``on_conflict``
contract exists for.

The sink requires every emitted window to cover the same meter cohort
the table was created with: windows that *quarantined* meters at close
cannot be appended (the v2 append contract is all-meters whole days) and
raise — run the plane under ``repair`` (or ``strict``) when a store sink
is attached, which the constructor checks up front.
"""

from __future__ import annotations

from repro.columnar.partstore import PartitionedStore
from repro.exceptions import StreamingError
from repro.streaming.window import StreamingPlane, WindowResult


class StoreSink:
    """Append each closed window to one v2 partitioned table."""

    def __init__(
        self,
        store: PartitionedStore,
        table: str = "stream",
        plane: StreamingPlane | None = None,
    ) -> None:
        self.store = store
        self.table = table
        #: Window indices already written (revisions of these are overlaps).
        self.written: list[int] = []
        if plane is not None and plane.ladder.quarantines:
            raise StreamingError(
                "a store sink needs full cohorts per window; run the plane "
                "under the 'repair' or 'strict' ladder, not 'quarantine'"
            )

    def write(self, result: WindowResult) -> None:
        """Persist one emitted window (idempotent on re-emissions).

        First window ingests (creates the table); subsequent windows
        append with ``start_day=result.day0`` so the store itself rejects
        out-of-order or duplicated windows.  A *revision* of an
        already-written window (applied-late re-emission) is recognized
        as a full overlap and skipped — the store is append-only, so the
        revised readings live in the re-emitted result, not the table.
        """
        if result.dropped:
            raise StreamingError(
                f"window {result.index} dropped {len(result.dropped)} "
                "meters at close; cannot append a partial cohort to "
                f"table {self.table!r}"
            )
        if self.table in self.store.list_tables():
            self.store.append_days(
                self.table,
                result.dataset,
                start_day=result.day0,
                on_conflict="skip" if result.index in self.written else "error",
            )
        else:
            if result.day0 != 0:
                raise StreamingError(
                    f"first window written to table {self.table!r} must "
                    f"start at day 0, got day {result.day0} "
                    f"(window {result.index})"
                )
            self.store.ingest_dataset(result.dataset, name=self.table)
        if result.index not in self.written:
            self.written.append(result.index)

    def drain(self, results: list[WindowResult]) -> int:
        """Write a batch of emissions (the return of ``plane.ingest``);
        returns how many were appended."""
        for result in results:
            self.write(result)
        return len(results)
