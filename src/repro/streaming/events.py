"""The streaming data model: columnar reading batches over a fixed cohort.

A live meter feed delivers ``(meter, hour, kWh, degC)`` tuples.  The
streaming plane processes them in *batches* — column arrays rather than
per-reading Python objects — because at firehose rates the per-object
overhead alone would dwarf the analytics.  A single reading is simply a
batch of length one.

Meters are addressed by *cohort index* (their row in the plane's fixed
consumer dictionary, exactly like the v2 store's string dictionary) and
time by *global hour index* since the stream epoch, matching the
``(n, hours)`` matrix convention used everywhere else in the package.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.exceptions import DataError
from repro.timeseries.calendar import HOURS_PER_DAY
from repro.timeseries.series import Dataset


@dataclass(frozen=True)
class ReadingBatch:
    """A batch of meter readings, one array entry per reading.

    ``consumer`` holds cohort indices, ``hour`` global hour indices since
    the stream epoch; ``consumption``/``temperature`` are the readings.
    Batches carry no ordering contract — the plane handles any arrival
    permutation — but all four arrays must be equal-length and 1-D.
    """

    consumer: np.ndarray
    hour: np.ndarray
    consumption: np.ndarray
    temperature: np.ndarray

    def __post_init__(self) -> None:
        shapes = {
            self.consumer.shape,
            self.hour.shape,
            self.consumption.shape,
            self.temperature.shape,
        }
        if len(shapes) != 1 or self.consumer.ndim != 1:
            raise DataError(
                f"batch columns must be equal-length 1-D arrays, got "
                f"{sorted(s for s in shapes)}"
            )

    def __len__(self) -> int:
        return int(self.consumer.shape[0])

    @staticmethod
    def from_arrays(consumer, hour, consumption, temperature) -> "ReadingBatch":
        """Build a batch, coercing the columns to their canonical dtypes."""
        return ReadingBatch(
            consumer=np.asarray(consumer, dtype=np.int64),
            hour=np.asarray(hour, dtype=np.int64),
            consumption=np.asarray(consumption, dtype=np.float64),
            temperature=np.asarray(temperature, dtype=np.float64),
        )

    def take(self, index: np.ndarray) -> "ReadingBatch":
        """A sub-batch at the given positions (gather, no copy semantics)."""
        return ReadingBatch(
            consumer=self.consumer[index],
            hour=self.hour[index],
            consumption=self.consumption[index],
            temperature=self.temperature[index],
        )

    def concat(self, other: "ReadingBatch") -> "ReadingBatch":
        """This batch followed by ``other``."""
        return ReadingBatch(
            consumer=np.concatenate([self.consumer, other.consumer]),
            hour=np.concatenate([self.hour, other.hour]),
            consumption=np.concatenate([self.consumption, other.consumption]),
            temperature=np.concatenate([self.temperature, other.temperature]),
        )


def batch_from_dataset(
    dataset: Dataset, hour0: int = 0, hour1: int | None = None
) -> ReadingBatch:
    """All readings of ``dataset`` columns ``hour0:hour1`` as one batch.

    Readings are emitted meter-major (all of meter 0's hours, then meter
    1's, ...), which is already an out-of-order arrival pattern relative
    to wall-clock time — useful directly in convergence tests.
    """
    n, n_hours = dataset.consumption.shape
    hour1 = n_hours if hour1 is None else hour1
    if not 0 <= hour0 < hour1 <= n_hours:
        raise DataError(f"hour range [{hour0}, {hour1}) out of 0..{n_hours}")
    width = hour1 - hour0
    consumers = np.repeat(np.arange(n, dtype=np.int64), width)
    hours = np.tile(np.arange(hour0, hour1, dtype=np.int64), n)
    return ReadingBatch(
        consumer=consumers,
        hour=hours,
        consumption=dataset.consumption[:, hour0:hour1].ravel(),
        temperature=dataset.temperature[:, hour0:hour1].ravel(),
    )


def day_ticks(dataset: Dataset, hour0: int = 0):
    """Yield one batch per day of ``dataset`` — the natural feed granularity.

    ``hour0`` offsets the global hour indices, so a dataset can be
    replayed as the continuation of an earlier stream.
    """
    n_hours = dataset.consumption.shape[1]
    if n_hours % HOURS_PER_DAY != 0:
        raise DataError(f"dataset length {n_hours} is not a whole number of days")
    for h in range(0, n_hours, HOURS_PER_DAY):
        batch = batch_from_dataset(dataset, h, h + HOURS_PER_DAY)
        yield ReadingBatch(
            consumer=batch.consumer,
            hour=batch.hour + hour0,
            consumption=batch.consumption,
            temperature=batch.temperature,
        )


def shuffle_batch(batch: ReadingBatch, seed: int) -> ReadingBatch:
    """The same readings in a deterministic random arrival order."""
    rng = np.random.default_rng(seed)
    return batch.take(rng.permutation(len(batch)))
