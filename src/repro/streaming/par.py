"""Incremental Task 3: recursive-least-squares PAR normal equations.

The reference fits 24 per-hour OLS models per meter by SVD over the full
design.  This state instead *accumulates* each hour-model's normal
equations — the Gram matrix ``X'X`` and moment vector ``X'y`` — one
completed day at a time, which is the textbook recursive-least-squares
(information-filter) update: folding a day adds one rank-1 outer product
per hour-model, O(k^2) work per (meter, hour), independent of how much
history the window holds.  Solving is deferred until somebody asks.

A day ``d`` of meter ``m`` can fold once days ``0..d`` are all present
(the lag columns read ``d-1..d-p``); the per-meter *frontier* tracks the
longest complete prefix so out-of-order days fold exactly once, in
order, whenever arrivals make them ready.  Overwrites of already-folded
readings poison the accumulators, so such meters are flagged
``needs_rebuild`` and their state is reassembled from the window buffer
on the next query — arrival order therefore never changes what is
ultimately folded, only when.

Solve path and equivalence contract mirror :mod:`repro.batched.par`:
normal-equations solve behind the same eigenvalue condition screen
(:data:`repro.batched.par.BATCHED_SOLVE_MAX_CONDITION`), per-system
``lstsq`` on the true design (rebuilt from the buffer) as the fallback.
Because the Gram entries are accumulated day-by-day instead of in one
matmul, the summation *order* differs from the batched kernel's — the
results agree with the loop reference within the same documented
tolerance class (``PAR_COEFF_RTOL``/``PAR_PROFILE_RTOL``), which the
streaming convergence gate checks with
:func:`repro.core.validation.compare_par`.  Hour-model SSE is recovered
from the accumulated moments (``y'y - 2 c.b + c'Ac``) rather than from
residuals; it shares the same tolerance class.
"""

from __future__ import annotations

import numpy as np

from repro.batched.par import BATCHED_SOLVE_MAX_CONDITION
from repro.core.par import (
    HourModel,
    ParConfig,
    ParModel,
    min_days_required,
    n_coefficients,
)
from repro.exceptions import DataError, InsufficientDataError
from repro.timeseries.calendar import HOURS_PER_DAY


class StreamingParState:
    """Per-(meter, hour) RLS accumulators for a cohort of meters."""

    def __init__(self, n_consumers: int, config: ParConfig | None = None) -> None:
        self.cfg = config or ParConfig()
        self.n = n_consumers
        self.k = n_coefficients(self.cfg)
        self.n_temp = 1 if self.cfg.temperature_mode == "linear" else 2
        h, k = HOURS_PER_DAY, self.k
        self.xtx = np.zeros((n_consumers, h, k, k))
        self.xty = np.zeros((n_consumers, h, k))
        self.sum_y = np.zeros((n_consumers, h))
        self.sum_yy = np.zeros((n_consumers, h))
        self.sum_tc = np.zeros((n_consumers, h, self.n_temp))
        #: Days folded as observations per meter (same for all 24 hours).
        self.n_obs = np.zeros(n_consumers, dtype=np.int64)
        #: Longest complete day-prefix already folded.
        self.frontier = np.zeros(n_consumers, dtype=np.int64)
        #: Meters whose folded history was edited: rebuild before solving.
        self.needs_rebuild = np.zeros(n_consumers, dtype=bool)

    # Folding ----------------------------------------------------------------

    def _design_for_days(
        self, cons_dh: np.ndarray, temp_dh: np.ndarray, days: np.ndarray
    ) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Design rows for the given (meter-aligned) observation days.

        ``cons_dh``/``temp_dh`` are ``(m, W, 24)`` buffer views for the
        selected meters and ``days`` the per-row observation day (one day
        per selected meter).  Returns ``(X, y, t)`` with ``X`` of shape
        ``(m, 24, k)`` — columns exactly as the reference: intercept,
        lags ``1..p``, then the thermal tail.
        """
        m = cons_dh.shape[0]
        rows = np.arange(m)
        p = self.cfg.p
        X = np.empty((m, HOURS_PER_DAY, self.k))
        X[:, :, 0] = 1.0
        for lag in range(1, p + 1):
            X[:, :, lag] = cons_dh[rows, days - lag, :]
        t = temp_dh[rows, days, :]
        if self.cfg.temperature_mode == "linear":
            X[:, :, 1 + p] = t
        else:
            np.maximum(0.0, self.cfg.t_heat - t, out=X[:, :, 1 + p])
            np.maximum(0.0, t - self.cfg.t_cool, out=X[:, :, 2 + p])
        y = cons_dh[rows, days, :]
        return X, y, t

    def _fold_days(
        self,
        meters: np.ndarray,
        days: np.ndarray,
        cons_dh: np.ndarray,
        temp_dh: np.ndarray,
    ) -> None:
        """Rank-1 RLS update: fold one observation day per listed meter."""
        X, y, _t = self._design_for_days(cons_dh[meters], temp_dh[meters], days)
        if meters.size == self.n:
            # ``meters`` is sorted-unique (flatnonzero-derived), so full
            # size means the whole cohort: plain adds skip the
            # gather/scatter passes of fancy-indexed ``+=``.
            self.xtx += X[:, :, :, None] * X[:, :, None, :]
            self.xty += X * y[:, :, None]
            self.sum_y += y
            self.sum_yy += y * y
            self.sum_tc += X[:, :, 1 + self.cfg.p :]
            self.n_obs += 1
        else:
            self.xtx[meters] += X[:, :, :, None] * X[:, :, None, :]
            self.xty[meters] += X * y[:, :, None]
            self.sum_y[meters] += y
            self.sum_yy[meters] += y * y
            self.sum_tc[meters] += X[:, :, 1 + self.cfg.p :]
            self.n_obs[meters] += 1

    def advance(
        self,
        days_complete: np.ndarray,
        cons_dh: np.ndarray,
        temp_dh: np.ndarray,
    ) -> int:
        """Fold every newly-ready day; returns how many day-folds ran.

        ``days_complete`` is the plane's ``(n, W)`` completeness mask and
        ``cons_dh``/``temp_dh`` its buffer reshaped ``(n, W, 24)``.  For
        each meter the frontier advances over the leading run of complete
        days, folding days ``>= p`` in order as they become reachable.
        """
        n, W = days_complete.shape
        if n != self.n:
            raise DataError(f"expected {self.n} meters, got {n}")
        all_done = days_complete.all(axis=1)
        lead = np.where(all_done, W, days_complete.argmin(axis=1))
        lead = np.where(self.needs_rebuild, self.frontier, lead)
        folds = 0
        for d in range(self.cfg.p, W):
            m = np.flatnonzero((self.frontier <= d) & (lead > d))
            if m.size:
                self._fold_days(m, np.full(m.size, d), cons_dh, temp_dh)
                folds += m.size
        self.frontier = np.maximum(self.frontier, lead)
        return folds

    def mark_rebuild(self, consumers: np.ndarray) -> None:
        """Edited history (late overwrite of a folded reading): the
        affected meters' accumulators are rebuilt lazily from the buffer."""
        self.needs_rebuild[consumers] = True

    def rebuild(
        self,
        consumer: int,
        days_complete_row: np.ndarray,
        cons_dh: np.ndarray,
        temp_dh: np.ndarray,
    ) -> None:
        """Re-accumulate one meter from scratch out of the buffer."""
        h, k = HOURS_PER_DAY, self.k
        self.xtx[consumer] = 0.0
        self.xty[consumer] = 0.0
        self.sum_y[consumer] = 0.0
        self.sum_yy[consumer] = 0.0
        self.sum_tc[consumer] = 0.0
        self.n_obs[consumer] = 0
        self.frontier[consumer] = 0
        self.needs_rebuild[consumer] = False
        W = days_complete_row.size
        lead = W if days_complete_row.all() else int(days_complete_row.argmin())
        one = np.array([consumer])
        for d in range(self.cfg.p, lead):
            self._fold_days(one, np.array([d]), cons_dh, temp_dh)
        self.frontier[consumer] = lead

    # Solving ----------------------------------------------------------------

    def solve(
        self,
        consumers: np.ndarray,
        cons_dh: np.ndarray,
        temp_dh: np.ndarray,
    ) -> list[ParModel]:
        """Solve the accumulated normal equations for the given meters.

        ``cons_dh``/``temp_dh`` are needed only for the rare
        ill-conditioned systems that take the ``lstsq``-on-true-design
        fallback (same screen and fallback as :mod:`repro.batched.par`).
        """
        cfg, p, k = self.cfg, self.cfg.p, self.k
        min_days = min_days_required(cfg)
        short = self.n_obs[consumers] + p < min_days
        if short.any():
            bad = consumers[short][0]
            raise InsufficientDataError(
                f"PAR with p={p} needs at least {min_days} complete days, "
                f"meter {bad} has {int(self.n_obs[bad]) + p}"
            )
        if self.needs_rebuild[consumers].any():
            raise DataError(
                "meters flagged needs_rebuild must be rebuilt before solve"
            )
        A = self.xtx[consumers].reshape(-1, k, k)
        b = self.xty[consumers].reshape(-1, k)
        with np.errstate(all="ignore"):
            eigs = np.linalg.eigvalsh(A)
        smallest, largest = eigs[:, 0], eigs[:, -1]
        solvable = (smallest > 0) & (
            largest < smallest * BATCHED_SOLVE_MAX_CONDITION
        )
        coeffs = np.zeros((A.shape[0], k))
        if solvable.any():
            try:
                coeffs[solvable] = np.linalg.solve(
                    A[solvable], b[solvable][:, :, None]
                )[:, :, 0]
            except np.linalg.LinAlgError:
                solvable = np.zeros_like(solvable)
        for idx in np.flatnonzero(~solvable):
            mi, h = divmod(int(idx), HOURS_PER_DAY)
            meter = int(consumers[mi])
            X, Y = self._full_design(meter, cons_dh, temp_dh)
            coeffs[idx] = np.linalg.lstsq(X[h], Y[h], rcond=None)[0]

        # SSE from the accumulated moments: ||y - Xc||^2 expanded.
        sse = (
            self.sum_yy[consumers].reshape(-1)
            - 2.0 * (coeffs * b).sum(axis=1)
            + (coeffs[:, None, :] @ A @ coeffs[:, :, None])[:, 0, 0]
        )
        sse = np.maximum(sse, 0.0)

        n_obs = self.n_obs[consumers]
        mean_y = self.sum_y[consumers] / n_obs[:, None]
        mean_tc = self.sum_tc[consumers] / n_obs[:, None, None]
        coeffs_mh = coeffs.reshape(-1, HOURS_PER_DAY, k)
        temp_coeffs = coeffs_mh[:, :, 1 + p :]
        if cfg.temperature_mode == "linear":
            thermal = temp_coeffs[:, :, 0] * (mean_tc[:, :, 0] - cfg.t_ref)
        else:
            thermal = (mean_tc * temp_coeffs).sum(axis=2)
        profile = mean_y - thermal
        sse_mh = sse.reshape(-1, HOURS_PER_DAY)

        models: list[ParModel] = []
        for i, meter in enumerate(consumers):
            hour_models = tuple(
                HourModel(
                    hour=h,
                    coefficients=coeffs_mh[i, h],
                    sse=float(sse_mh[i, h]),
                    n_observations=int(n_obs[i]),
                )
                for h in range(HOURS_PER_DAY)
            )
            models.append(
                ParModel(
                    profile=profile[i],
                    hour_models=hour_models,
                    p=p,
                    temperature_mode=cfg.temperature_mode,
                    config=cfg,
                )
            )
        return models

    def _full_design(
        self, meter: int, cons_dh: np.ndarray, temp_dh: np.ndarray
    ) -> tuple[np.ndarray, np.ndarray]:
        """The full stacked design/targets of one meter's folded days,
        hour-major: ``(24, n_obs, k)`` and ``(24, n_obs)``."""
        p = self.cfg.p
        days = np.arange(p, int(self.frontier[meter]))
        rows = np.repeat(meter, days.size)
        X, y, _t = self._design_for_days(
            cons_dh[rows], temp_dh[rows], days
        )  # (n_obs, 24, k)
        return X.transpose(1, 0, 2), y.T
