"""The streaming plane: tumbling windows, watermarks, and the late ladder.

:class:`StreamingPlane` is the live-ingest counterpart of
:func:`repro.core.benchmark.run_task_reference`.  Readings arrive in any
order as :class:`~repro.streaming.events.ReadingBatch` es over a fixed
meter cohort; the plane routes them into tumbling windows of
``window_days``, maintains each window's four task answers incrementally
(:mod:`~repro.streaming.histogram`, :mod:`~repro.streaming.threeline`,
:mod:`~repro.streaming.par`, :mod:`~repro.streaming.similarity`), and
finalizes a window once the *watermark* — the highest event-time seen
minus ``allowed_lateness_hours`` — passes its end.

Out-of-order, duplicate, late, and missing readings all route through
the PR 5 ingest policy ladder (``strict | repair | quarantine``):

========================  ==========  ======================  =================
situation                 strict      repair                  quarantine
========================  ==========  ======================  =================
duplicate delivery        raise       overwrite (correction)  drop + record
NaN reading               raise       treat as missing        drop + record
missing at window close   raise       impute + recompute      drop meter+record
arrival after close       raise       apply late + re-emit    drop + record
========================  ==========  ======================  =================

Convergence contract (asserted by ``tests/test_streaming_plane.py`` and
the ``regress.py --streaming`` gate):

* **histogram, 3-line** — the closed window's results are
  **bit-identical** to the batch kernels on the window's dataset
  (:func:`repro.core.validation.assert_identical_task_results`); the
  close path funnels through :func:`repro.core.histogram.
  equi_width_histogram`-compatible folds and the stacked
  :func:`repro.batched.threeline.batched_fit_bands`;
* **PAR** — within the documented RLS-vs-stacked-solve tolerance of
  :mod:`repro.streaming.par` (checked via ``compare_par``);
* **similarity** — within ``compare_similarity``'s ``1e-9`` score
  tolerance (float summation order differs; see
  :mod:`repro.streaming.similarity`);
* under the ``repair`` ladder these contracts hold for **any arrival
  permutation**, including post-close arrivals: the (re-emitted) result
  equals the batch answer over *all* readings, no matter when they came;
  under ``quarantine`` the result equals the batch answer over the
  readings that arrived in time (dropped ones are recorded in the
  window's :class:`~repro.ingest.report.QualityReport`).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any

import numpy as np

from repro.batched.threeline import batched_fit_bands, batched_percentile_points
from repro.core.benchmark import BenchmarkSpec, Task
from repro.exceptions import (
    DataError,
    DuplicateReadingError,
    LateReadingError,
    StreamingError,
)
from repro.core.par import min_days_required
from repro.ingest.policy import IngestConfig, resolve_ingest_config
from repro.ingest.report import ConsumerQuality, DataIssue, QualityReport, RepairAction
from repro.streaming.events import ReadingBatch
from repro.streaming.histogram import StreamingHistogramState
from repro.streaming.par import StreamingParState
from repro.streaming.similarity import CentroidIndex, StreamingSimilarityState
from repro.core.similarity import rank_row
from repro.streaming.threeline import StreamingThreeLineState
from repro.timeseries.calendar import HOURS_PER_DAY
from repro.timeseries.quality import impute
from repro.timeseries.series import Dataset

#: All four tasks, in the paper's order.
ALL_TASKS = (Task.HISTOGRAM, Task.THREELINE, Task.PAR, Task.SIMILARITY)


@dataclass(frozen=True)
class StreamConfig:
    """Tuning knobs of the streaming plane."""

    #: Tumbling window length.
    window_days: int = 14
    #: Watermark lag: a window closes once the max event-hour seen
    #: exceeds its end by this much.
    allowed_lateness_hours: int = 24
    #: Late/dirty ladder (``strict | repair | quarantine``); ``None``
    #: inherits the process-wide ingest default (``--on-dirty``).
    on_late: "str | IngestConfig | None" = None
    #: How many closed windows keep their buffers for applied-late
    #: revisions under the ``repair`` policy.
    retain_closed: int = 1
    #: Task parameters (bucket count, AR order, k, 3-line knobs).
    spec: BenchmarkSpec = field(default_factory=BenchmarkSpec)
    #: Which tasks to maintain (all four by default).
    tasks: tuple[Task, ...] = ALL_TASKS

    def __post_init__(self) -> None:
        if self.window_days < 1:
            raise ValueError(f"window_days must be >= 1, got {self.window_days}")
        if self.allowed_lateness_hours < 0:
            raise ValueError(
                f"allowed_lateness_hours must be >= 0, "
                f"got {self.allowed_lateness_hours}"
            )
        if self.retain_closed < 0:
            raise ValueError(
                f"retain_closed must be >= 0, got {self.retain_closed}"
            )


@dataclass
class WindowResult:
    """One finalized window's task answers."""

    index: int
    #: Global day index of the window's first day.
    day0: int
    n_days: int
    #: task -> {consumer_id: task result} — same shapes as
    #: :func:`repro.core.benchmark.run_task_reference`.
    results: dict[Task, dict[str, Any]]
    #: The window's (policy-applied) data — what the results describe and
    #: what the store sink appends.
    dataset: Dataset
    #: Meters dropped by the quarantine ladder at close.
    dropped: list[str] = field(default_factory=list)
    #: 0 for the first emission; bumped by applied-late re-emissions.
    revision: int = 0
    #: Monotonic emission counter over the plane's lifetime: every
    #: emission — first close or revision — gets a fresh, strictly
    #: increasing epoch.  The exactly-once store sink keys on it: a
    #: redelivered epoch at or below the table's committed ``last_epoch``
    #: is a crash-replay duplicate, a higher one is new information.
    epoch: int = -1


class _WindowState:
    """One open (or retained) window's buffers and kernel states."""

    def __init__(self, index: int, n: int, config: StreamConfig) -> None:
        self.index = index
        self.config = config
        W = config.window_days
        self.hours = W * HOURS_PER_DAY
        self.hour0 = index * self.hours
        self.cons = np.full((n, self.hours), np.nan)
        self.temp = np.full((n, self.hours), np.nan)
        #: Readings present per (meter, day) — day completeness feed.
        self.day_count = np.zeros((n, W), dtype=np.int32)
        #: Meters present per hour-column — similarity fold feed.
        self.hour_count = np.zeros(self.hours, dtype=np.int32)
        self.hour_folded = np.zeros(self.hours, dtype=bool)
        spec = config.spec
        self.hist = (
            StreamingHistogramState(n, spec.n_buckets)
            if Task.HISTOGRAM in config.tasks else None
        )
        self.threeline = (
            StreamingThreeLineState(n, spec.threeline)
            if Task.THREELINE in config.tasks else None
        )
        self.par = (
            StreamingParState(n, spec.par) if Task.PAR in config.tasks else None
        )
        self.sim = (
            StreamingSimilarityState(n, spec.top_k)
            if Task.SIMILARITY in config.tasks else None
        )
        self.closed = False
        self.result: WindowResult | None = None
        self.n_readings = 0

    @property
    def cons_dh(self) -> np.ndarray:
        return self.cons.reshape(self.cons.shape[0], -1, HOURS_PER_DAY)

    @property
    def temp_dh(self) -> np.ndarray:
        return self.temp.reshape(self.temp.shape[0], -1, HOURS_PER_DAY)


class StreamingPlane:
    """Live-ingest analytics over a fixed meter cohort (see module docs)."""

    def __init__(
        self, consumer_ids: list[str], config: StreamConfig | None = None
    ) -> None:
        if len(set(consumer_ids)) != len(consumer_ids):
            raise DataError("consumer ids must be unique")
        self.ids = list(consumer_ids)
        self.n = len(self.ids)
        self.config = config or StreamConfig()
        if Task.PAR in self.config.tasks:
            need = min_days_required(self.config.spec.par)
            if self.config.window_days < need:
                raise ValueError(
                    f"PAR with p={self.config.spec.par.p} needs windows of "
                    f"at least {need} days, got {self.config.window_days}; "
                    "widen the window or drop Task.PAR from tasks"
                )
        self.ladder = resolve_ingest_config(self.config.on_late)
        self.windows: dict[int, _WindowState] = {}
        #: Highest event hour seen so far (-1 before any reading).
        self.max_event_hour = -1
        #: Finalized results in close order, revisions included.
        self.emitted: list[WindowResult] = []
        self.report = QualityReport(source="streaming-plane")
        #: Windows finalized so far (close order); buffers retained for
        #: the most recent ``retain_closed`` of them.
        self._closed_order: list[int] = []
        self.readings_ingested = 0
        #: Next emission epoch (monotonic; checkpointed by the
        #: durability layer so replayed emissions reuse their epochs).
        self.next_epoch = 0

    # Routing ----------------------------------------------------------------

    @property
    def watermark_hour(self) -> int:
        """Event-time low watermark: readings at or below this hour are
        considered final (windows ending below it close)."""
        return self.max_event_hour - self.config.allowed_lateness_hours

    def _window(self, index: int) -> _WindowState:
        state = self.windows.get(index)
        if state is None:
            state = _WindowState(index, self.n, self.config)
            self.windows[index] = state
        return state

    def ingest(self, batch: ReadingBatch) -> list[WindowResult]:
        """Fold one arrival batch; returns any windows it caused to close
        (or re-emit, for applied-late revisions)."""
        if len(batch) == 0:
            return []
        if batch.consumer.min() < 0 or batch.consumer.max() >= self.n:
            raise DataError(
                f"consumer index out of range 0..{self.n - 1}"
            )
        if batch.hour.min() < 0:
            raise DataError("negative event hour")

        emitted: list[WindowResult] = []
        per_window = batch.hour // (self.config.window_days * HOURS_PER_DAY)
        for w in np.unique(per_window):
            sub = batch.take(per_window == w)
            if int(w) in self._closed_order and int(w) not in self.windows:
                # Closed AND retired beyond ``retain_closed``: no buffer
                # is left to apply the reading to, so even the repair
                # ladder can only drop and record it.
                if self.ladder.strict:
                    raise LateReadingError(
                        f"reading for window {int(w)}, closed and retired "
                        f"beyond retain_closed={self.config.retain_closed} "
                        "(strict policy)"
                    )
                self._record_dropped(
                    sub.consumer, "late_reading",
                    f"arrived after window {int(w)} was retired; dropped",
                )
                continue
            state = self._window(int(w))
            if state.closed:
                emitted.extend(self._late_after_close(state, sub))
            else:
                self._fold(state, sub)
        self.max_event_hour = max(self.max_event_hour, int(batch.hour.max()))
        emitted.extend(self.close_ready())
        return emitted

    def _fold(self, state: _WindowState, batch: ReadingBatch) -> None:
        """Fold a batch that belongs to one open window."""
        cons = batch.consumer
        local = batch.hour - state.hour0
        values = batch.consumption
        temps = batch.temperature

        # NaN readings: a meter reported but the value is unusable.
        bad = np.isnan(values) | np.isnan(temps)
        if bad.any():
            if self.ladder.strict:
                raise StreamingError(
                    f"NaN reading for meter index {int(cons[bad][0])} at "
                    f"hour {int(batch.hour[bad][0])} (strict policy)"
                )
            self._record_dropped(cons[bad], "nan_reading",
                                 "unusable reading treated as missing")
            keep = ~bad
            cons, local, values, temps = (
                cons[keep], local[keep], values[keep], temps[keep]
            )
            if cons.size == 0:
                return

        # Intra-batch duplicates: keep the last delivery of each cell,
        # then resolve cells already present in the buffer per policy.
        cell = cons * state.hours + local
        last = np.full(len(cell), True)
        if cell.size > 1:
            order = np.argsort(cell, kind="stable")
            sorted_cell = cell[order]
            is_last = np.append(sorted_cell[:-1] != sorted_cell[1:], True)
            last = np.zeros(len(cell), dtype=bool)
            last[order[is_last]] = True
        dup_in_batch = ~last
        dup_in_buffer = last & ~np.isnan(state.cons[cons, local])
        dups = dup_in_batch | dup_in_buffer
        if dups.any():
            if self.ladder.strict:
                i = int(np.flatnonzero(dups)[0])
                raise DuplicateReadingError(
                    f"duplicate reading for meter index {int(cons[i])} at "
                    f"hour {int(state.hour0 + local[i])} (strict policy)"
                )
            if self.ladder.quarantines:
                self._record_dropped(cons[dups], "duplicate_reading",
                                     "re-delivered cell dropped")
                keep = ~dups
                cons, local, values, temps = (
                    cons[keep], local[keep], values[keep], temps[keep]
                )
                if cons.size == 0:
                    return
                dup_in_buffer = np.zeros(cons.size, dtype=bool)
            else:  # repair: apply as corrections
                keep = last
                over = dup_in_buffer[keep]
                cons, local, values, temps = (
                    cons[keep], local[keep], values[keep], temps[keep]
                )
                dup_in_buffer = over
                self._apply_corrections(state, cons[over], local[over])

        new_cell = ~dup_in_buffer
        state.n_readings += int(cons.size)
        self.readings_ingested += int(cons.size)

        # Completeness counters advance only for first-time cells
        # (bincount, not np.add.at — this is the per-reading hot path).
        nc, nl = cons[new_cell], local[new_cell]
        W = self.config.window_days
        state.day_count += np.bincount(
            nc * W + nl // HOURS_PER_DAY, minlength=self.n * W
        ).reshape(self.n, W).astype(np.int32)
        state.hour_count += np.bincount(
            nl, minlength=state.hours
        ).astype(np.int32)

        # Buffer writes (overwrites included — corrections already
        # unfolded what they had to).
        state.cons[cons, local] = values
        state.temp[cons, local] = temps

        # Task folds.
        if state.hist is not None:
            state.hist.fold(nc, values[new_cell])
        if state.threeline is not None:
            state.threeline.mark_dirty(cons)
        if state.par is not None:
            state.par.advance(
                state.day_count == HOURS_PER_DAY, state.cons_dh, state.temp_dh
            )
        if state.sim is not None:
            ready = np.flatnonzero(
                (state.hour_count == self.n) & ~state.hour_folded
            )
            if ready.size:
                state.sim.fold_hours(state.cons, ready)
                state.hour_folded[ready] = True

    def _apply_corrections(
        self, state: _WindowState, cons: np.ndarray, local: np.ndarray
    ) -> None:
        """Unfold whatever incremental state the overwritten cells had
        already reached, so the overwrite stays exact."""
        if cons.size == 0:
            return
        for c in np.unique(cons):
            self.report.record(ConsumerQuality(
                consumer_id=self.ids[int(c)],
                action="repaired",
                issues=[DataIssue("duplicate_reading",
                                  "re-delivered cell overwritten")],
                repairs=[RepairAction("overwrite", int((cons == c).sum()))],
            ))
        ucons = np.unique(cons)
        if state.hist is not None:
            state.hist.unfold(ucons)
        if state.par is not None:
            days = np.unique(
                np.stack([cons, local // HOURS_PER_DAY], axis=1), axis=0
            )
            touched = days[
                days[:, 1] < state.par.frontier[days[:, 0]]
            ][:, 0]
            if touched.size:
                state.par.mark_rebuild(np.unique(touched))
        if state.sim is not None:
            folded = np.unique(local[state.hour_folded[local]])
            if folded.size:
                state.sim.unfold_hours(state.cons, folded)
                state.hour_folded[folded] = False
                # Re-fold after the buffer write: mark as pending by
                # leaving hour_count untouched; _fold's ready scan
                # re-folds them since count already equals n.

    def _record_dropped(
        self, cons: np.ndarray, kind: str, message: str
    ) -> None:
        uniq, counts = np.unique(cons, return_counts=True)
        for c, cnt in zip(uniq, counts):
            self.report.record(ConsumerQuality(
                consumer_id=self.ids[int(c)],
                action="repaired" if self.ladder.repairs else "quarantined",
                issues=[DataIssue(kind, message, count=int(cnt))],
            ))

    # Closing ----------------------------------------------------------------

    def close_ready(self) -> list[WindowResult]:
        """Finalize every open window the watermark has passed."""
        emitted = []
        for index in sorted(self.windows):
            state = self.windows[index]
            end_hour = state.hour0 + state.hours - 1
            if not state.closed and end_hour <= self.watermark_hour:
                emitted.append(self._finalize(state))
        return emitted

    def force_close(self, index: int | None = None) -> list[WindowResult]:
        """Finalize open windows now (end of stream), watermark or not."""
        targets = (
            [index] if index is not None
            else [i for i in sorted(self.windows) if not self.windows[i].closed]
        )
        out = []
        for i in targets:
            state = self.windows.get(i)
            if state is None or state.closed:
                raise StreamingError(f"window {i} is not open")
            out.append(self._finalize(state))
        return out

    def _finalize(
        self, state: _WindowState, revision: int = 0
    ) -> WindowResult:
        """Resolve completeness per the ladder, converge every task's
        incremental state, and emit the window's results."""
        missing = np.isnan(state.cons)
        incomplete = np.flatnonzero(missing.any(axis=1))
        never = np.flatnonzero(missing.all(axis=1))
        dropped: list[str] = []
        keep = np.arange(self.n)
        if incomplete.size:
            if self.ladder.strict:
                raise StreamingError(
                    f"window {state.index}: {incomplete.size} meters "
                    f"incomplete at close (strict policy); first is "
                    f"{self.ids[int(incomplete[0])]!r}"
                )
            if self.ladder.quarantines or never.size:
                # Meters with no data at all can never be imputed; they
                # drop under repair too.
                drop = incomplete if self.ladder.quarantines else never
                dropped = [self.ids[int(c)] for c in drop]
                self._record_dropped(
                    drop, "incomplete_window",
                    f"missing readings at close of window {state.index}",
                )
                keep = np.setdiff1d(keep, drop)
            if self.ladder.repairs:
                fix = np.setdiff1d(incomplete, never)
                for c in fix:
                    row = state.cons[c]
                    n_miss = int(np.isnan(row).sum())
                    try:
                        state.cons[c] = impute(
                            row,
                            strategy=self.ladder.impute_strategy,
                            max_linear_gap=self.ladder.max_linear_gap,
                        )
                    except DataError:
                        # The hourly-mean strategies need every hour of
                        # day represented; a sparse early close may not.
                        # Linear interpolation always works with >= 1
                        # present reading (never-seen meters dropped above).
                        state.cons[c] = impute(row, strategy="linear")
                    trow = state.temp[c]
                    state.temp[c] = impute(
                        trow, strategy="linear"
                    ) if np.isnan(trow).any() else trow
                    self.report.record(ConsumerQuality(
                        consumer_id=self.ids[int(c)],
                        action="repaired",
                        issues=[DataIssue("incomplete_window",
                                          "missing readings at close",
                                          count=n_miss)],
                        repairs=[RepairAction("impute", n_miss,
                                              self.ladder.impute_strategy)],
                    ))
                if fix.size:
                    # Imputed cells were never folded anywhere: the day
                    # counters advance (those days are now complete) and
                    # the exact per-task states reset lazily (histogram
                    # rebin from the now-complete row; PAR and the Gram
                    # fold the remaining days/columns below).
                    state.day_count[fix] = HOURS_PER_DAY
                    if state.hist is not None:
                        state.hist.unfold(fix)

        if keep.size and np.isnan(state.cons[keep]).any():
            raise StreamingError(
                "internal: surviving meters still incomplete at close"
            )

        results: dict[Task, dict[str, Any]] = {}
        kept_ids = [self.ids[int(c)] for c in keep]

        if keep.size == 0:
            # Every meter quarantined: the window still emits (the drops
            # are the story), with empty per-task result maps.
            results = {task: {} for task in self.config.tasks}

        if keep.size and state.hist is not None:
            pending = keep[state.hist.needs_rebin[keep]]
            state.hist.rebin_many(pending, state.cons[pending])
            results[Task.HISTOGRAM] = {
                self.ids[int(c)]: state.hist.result(int(c)) for c in keep
            }

        if keep.size and state.threeline is not None:
            row_splits, temps, lower, upper, counts = batched_percentile_points(
                state.cons[keep], state.temp[keep], self.config.spec.threeline
            )
            models = batched_fit_bands(
                row_splits, temps, lower, upper, counts,
                self.config.spec.threeline,
            )
            for local_i, c in enumerate(keep):
                state.threeline.set_model(int(c), models[local_i])
            results[Task.THREELINE] = {
                self.ids[int(c)]: state.threeline.models[int(c)] for c in keep
            }

        if keep.size and state.par is not None:
            days_complete = state.day_count == HOURS_PER_DAY
            days_complete[keep] = True  # survivors are complete by now
            for c in keep[state.par.needs_rebuild[keep]]:
                state.par.rebuild(
                    int(c), days_complete[int(c)], state.cons_dh, state.temp_dh
                )
            state.par.advance(days_complete, state.cons_dh, state.temp_dh)
            models = state.par.solve(keep, state.cons_dh, state.temp_dh)
            results[Task.PAR] = {
                self.ids[int(c)]: m for c, m in zip(keep, models)
            }

        if keep.size and state.sim is not None:
            if keep.size != self.n:
                # Dropped meters poison folded columns: rebuild the Gram
                # over the survivors (documented quarantine-close cost).
                sub = StreamingSimilarityState(
                    keep.size, self.config.spec.top_k
                )
                sub.fold_hours(state.cons[keep], np.arange(state.hours))
                results[Task.SIMILARITY] = sub.top_k_all(kept_ids)
            else:
                ready = np.flatnonzero(~state.hour_folded)
                if ready.size:
                    state.sim.fold_hours(state.cons, ready)
                    state.hour_folded[ready] = True
                results[Task.SIMILARITY] = state.sim.top_k_all(kept_ids)

        dataset = Dataset(
            consumer_ids=kept_ids,
            consumption=state.cons[keep].copy(),
            temperature=state.temp[keep].copy(),
            name=f"stream-window-{state.index}",
        )
        result = WindowResult(
            index=state.index,
            day0=state.index * self.config.window_days,
            n_days=self.config.window_days,
            results=results,
            dataset=dataset,
            dropped=dropped,
            revision=revision,
            epoch=self.next_epoch,
        )
        self.next_epoch += 1
        state.closed = True
        state.result = result
        if revision == 0:
            self._closed_order.append(state.index)
            self._trim_retained()
        self.emitted.append(result)
        return result

    def _trim_retained(self) -> None:
        """Drop buffers of closed windows beyond the retention horizon."""
        horizon = self.config.retain_closed
        retire = (
            self._closed_order[:-horizon] if horizon else self._closed_order
        )
        for index in retire:
            if index in self.windows:
                del self.windows[index]

    # Late-after-close -------------------------------------------------------

    def _late_after_close(
        self, state: _WindowState, batch: ReadingBatch
    ) -> list[WindowResult]:
        if self.ladder.strict:
            raise LateReadingError(
                f"reading for closed window {state.index} (meter index "
                f"{int(batch.consumer[0])}, hour {int(batch.hour[0])}) "
                "under strict policy"
            )
        if self.ladder.quarantines:
            self._record_dropped(
                batch.consumer, "late_reading",
                f"arrived after window {state.index} closed; dropped",
            )
            return []
        # repair = applied-late: fold the readings into the retained
        # buffer (corrections included) and re-emit a revised result.
        self._record_dropped(
            batch.consumer, "late_reading",
            f"arrived after window {state.index} closed; applied late",
        )
        state.closed = False
        try:
            self._fold(state, batch)
        finally:
            state.closed = True
        prev = state.result
        revision = (prev.revision + 1) if prev else 1
        state.closed = False
        try:
            return [self._finalize(state, revision=revision)]
        finally:
            state.closed = True

    # Live queries -----------------------------------------------------------

    def open_window(self, index: int | None = None) -> _WindowState:
        """The (oldest) open window, or the one at ``index``."""
        if index is not None:
            state = self.windows.get(index)
            if state is None:
                raise StreamingError(f"no window {index}")
            return state
        open_idx = [i for i in sorted(self.windows) if not self.windows[i].closed]
        if not open_idx:
            raise StreamingError("no open window")
        return self.windows[open_idx[0]]

    def query(
        self,
        task: Task,
        consumer_id: str,
        window: int | None = None,
        quick: bool = True,
    ):
        """The *current* answer for one meter over the open window so far.

        Mid-window answers describe the readings that have arrived (and,
        for PAR/similarity, the folded prefix); they converge to the
        batch answers at window close.  ``quick`` selects the 3-line
        cached-breakpoint shortcut over the exact refit.
        """
        state = self.open_window(window)
        c = self.ids.index(consumer_id)
        row = state.cons[c]
        present = ~np.isnan(row)
        if task is Task.HISTOGRAM:
            if state.hist is None:
                raise StreamingError("histogram not enabled")
            if state.hist.needs_rebin[c]:
                state.hist.rebin(c, row[present])
            return state.hist.result(c)
        if task is Task.THREELINE:
            if state.threeline is None:
                raise StreamingError("threeline not enabled")
            if state.threeline.dirty[c] or state.threeline.models[c] is None:
                refit = (
                    state.threeline.quick_refit if quick
                    else state.threeline.refit
                )
                refit(c, row[present], state.temp[c][present])
            return state.threeline.models[c]
        if task is Task.PAR:
            if state.par is None:
                raise StreamingError("par not enabled")
            if state.par.needs_rebuild[c]:
                state.par.rebuild(
                    c, state.day_count[c] == HOURS_PER_DAY,
                    state.cons_dh, state.temp_dh,
                )
            return state.par.solve(
                np.array([c]), state.cons_dh, state.temp_dh
            )[0]
        if task is Task.SIMILARITY:
            if state.sim is None:
                raise StreamingError("similarity not enabled")
            scores = state.sim.scores_row(c)
            return [
                (self.ids[i], s)
                for i, s in rank_row(scores, c, self.config.spec.top_k)
            ]
        raise ValueError(f"unknown task: {task!r}")

    def centroid_index(self, window: int | None = None) -> CentroidIndex:
        """Build a pruned-query index over the window buffer as-is."""
        state = self.open_window(window)
        return CentroidIndex(np.nan_to_num(state.cons, nan=0.0))
