"""Streaming analytics plane: live-ingest counterparts of the four tasks.

The batch engines answer "run task X over this dataset"; this package
answers "keep task X's answer *current* while readings arrive".  The
pieces:

* :mod:`~repro.streaming.events` — the arrival-side data model
  (:class:`ReadingBatch`) plus simulators that replay a dataset as a
  stream (in order, shuffled, a day at a time);
* :mod:`~repro.streaming.histogram` / :mod:`~repro.streaming.threeline` /
  :mod:`~repro.streaming.par` / :mod:`~repro.streaming.similarity` — one
  incremental state per benchmark task (mergeable equi-width sketches,
  dirty-flagged lazy band refits, recursive-least-squares PAR normal
  equations, a fold-maintained Gram with centroid-pruned live queries);
* :mod:`~repro.streaming.window` — the :class:`StreamingPlane` tying them
  into tumbling windows with watermarks and the strict|repair|quarantine
  late-data ladder;
* :mod:`~repro.streaming.sink` — :class:`StoreSink`, appending closed
  windows to a partitioned v2 store (:mod:`repro.columnar.partstore`);
* :mod:`~repro.streaming.sketches` — approximate O(1)-memory one-pass
  estimators (Welford, P², merging histogram, EW hourly profile) for
  alerting use cases that don't need the exact window states.

Convergence contract: at window close the plane's results equal the batch
kernels' — bit-identically for histogram and 3-line, within the documented
tolerances for PAR and similarity (see :mod:`repro.streaming.window`).
``benchmarks/regress.py --streaming`` gates both the contract and the
incremental-over-recompute speedup.
"""

from repro.streaming.events import (
    ReadingBatch,
    batch_from_dataset,
    day_ticks,
    shuffle_batch,
)
from repro.streaming.histogram import StreamingHistogramState
from repro.streaming.par import StreamingParState
from repro.streaming.similarity import CentroidIndex, StreamingSimilarityState
from repro.streaming.sketches import (
    OnlineHourlyProfile,
    OnlineStats,
    P2Quantile,
    StreamingHistogram,
)
from repro.streaming.sink import StoreSink
from repro.streaming.threeline import StreamingThreeLineState
from repro.streaming.window import (
    ALL_TASKS,
    StreamConfig,
    StreamingPlane,
    WindowResult,
)

__all__ = [
    "ALL_TASKS",
    "CentroidIndex",
    "OnlineHourlyProfile",
    "OnlineStats",
    "P2Quantile",
    "ReadingBatch",
    "StoreSink",
    "StreamConfig",
    "StreamingHistogram",
    "StreamingHistogramState",
    "StreamingParState",
    "StreamingPlane",
    "StreamingSimilarityState",
    "StreamingThreeLineState",
    "WindowResult",
    "batch_from_dataset",
    "day_ticks",
    "shuffle_batch",
]
