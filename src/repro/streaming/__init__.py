"""Streaming analytics plane: live-ingest counterparts of the four tasks.

The batch engines answer "run task X over this dataset"; this package
answers "keep task X's answer *current* while readings arrive".  The
pieces:

* :mod:`~repro.streaming.events` — the arrival-side data model
  (:class:`ReadingBatch`) plus simulators that replay a dataset as a
  stream (in order, shuffled, a day at a time);
* :mod:`~repro.streaming.histogram` / :mod:`~repro.streaming.threeline` /
  :mod:`~repro.streaming.par` / :mod:`~repro.streaming.similarity` — one
  incremental state per benchmark task (mergeable equi-width sketches,
  dirty-flagged lazy band refits, recursive-least-squares PAR normal
  equations, a fold-maintained Gram with centroid-pruned live queries);
* :mod:`~repro.streaming.window` — the :class:`StreamingPlane` tying them
  into tumbling windows with watermarks and the strict|repair|quarantine
  late-data ladder;
* :mod:`~repro.streaming.sink` — :class:`StoreSink`, writing closed
  windows to a partitioned v2 store (:mod:`repro.columnar.partstore`)
  exactly once, keyed on the emission epoch (replays skip, revisions
  overwrite);
* :mod:`~repro.streaming.durability` — the crash-safety layer:
  CRC-framed fsync'd :class:`WriteAheadLog` segments,
  :class:`PlaneCheckpoint` snapshots, and :class:`DurablePlane` tying
  them to a plane so recovery = latest checkpoint + WAL tail replay;
* :mod:`~repro.streaming.fleet` — sharded multi-process fleets:
  :class:`FeedWriter`/:class:`FileTailer` durable feed files and the
  :class:`FleetSupervisor` restarting crashed shards from their own
  WAL+checkpoint with backpressure and a dead-letter file;
* :mod:`~repro.streaming.sketches` — approximate O(1)-memory one-pass
  estimators (Welford, P², merging histogram, EW hourly profile) for
  alerting use cases that don't need the exact window states.

Convergence contract: at window close the plane's results equal the batch
kernels' — bit-identically for histogram and 3-line, within the documented
tolerances for PAR and similarity (see :mod:`repro.streaming.window`).
``benchmarks/regress.py --streaming`` gates both the contract and the
incremental-over-recompute speedup.
"""

from repro.streaming.durability import (
    DurablePlane,
    PlaneCheckpoint,
    RecoveryStats,
    WalRecord,
    WriteAheadLog,
)
from repro.streaming.events import (
    ReadingBatch,
    batch_from_dataset,
    day_ticks,
    shuffle_batch,
)
from repro.streaming.fleet import (
    FeedWriter,
    FileTailer,
    FleetConfig,
    FleetReport,
    FleetSupervisor,
)
from repro.streaming.histogram import StreamingHistogramState
from repro.streaming.par import StreamingParState
from repro.streaming.similarity import CentroidIndex, StreamingSimilarityState
from repro.streaming.sketches import (
    OnlineHourlyProfile,
    OnlineStats,
    P2Quantile,
    StreamingHistogram,
)
from repro.streaming.sink import StoreSink
from repro.streaming.threeline import StreamingThreeLineState
from repro.streaming.window import (
    ALL_TASKS,
    StreamConfig,
    StreamingPlane,
    WindowResult,
)

__all__ = [
    "ALL_TASKS",
    "CentroidIndex",
    "DurablePlane",
    "FeedWriter",
    "FileTailer",
    "FleetConfig",
    "FleetReport",
    "FleetSupervisor",
    "OnlineHourlyProfile",
    "OnlineStats",
    "P2Quantile",
    "PlaneCheckpoint",
    "ReadingBatch",
    "RecoveryStats",
    "StoreSink",
    "StreamConfig",
    "StreamingHistogram",
    "StreamingHistogramState",
    "StreamingParState",
    "StreamingPlane",
    "StreamingSimilarityState",
    "StreamingThreeLineState",
    "WalRecord",
    "WindowResult",
    "WriteAheadLog",
    "batch_from_dataset",
    "day_ticks",
    "shuffle_batch",
]
