"""Incremental Task 4: Gram-maintained top-k cosine similarity.

The batch kernel's cost is one ``n x hours x n`` matrix product per run.
Streaming keeps the ``(n, n)`` Gram matrix ``G = B B'`` of the window
buffer *incrementally*: when an hour-column becomes complete across the
cohort it is folded with a rank-``h`` update ``G += B[:, new] B[:, new]'``
— O(n^2) per hour instead of O(n^2 * hours) per recompute, i.e. O(n) per
reading.  Cosine scores then come out of ``G`` by normalizing with its
diagonal; no per-query matrix product remains.

Late overwrites of already-folded hours are corrected exactly by
subtracting the stale column's outer product before the buffer write and
re-adding the fresh one after — so arrival order never changes the final
Gram beyond float summation order.  That reordering is why the
window-close contract for similarity is the *documented-tolerance* one
(:func:`repro.core.validation.compare_similarity`, ``score_tol=1e-9``
with tie-tolerant neighbour sets) rather than bit-identity: the scores
agree with :func:`repro.core.similarity.top_k_similar` to ~1e-15
relative, far inside the tolerance, but not bit for bit.

Mid-window live queries can additionally go through a
:class:`CentroidIndex` — a lightweight spherical-clustering candidate
pruner that scores a query meter only against the most-similar centroid
buckets.  It is explicitly *approximate* (documented recall, not a
guarantee) and is never used on the window-close path.
"""

from __future__ import annotations

import numpy as np

from repro.core.similarity import Neighbours, clip_scores, rank_row
from repro.exceptions import DataError


class StreamingSimilarityState:
    """Incrementally-maintained Gram matrix and top-k queries."""

    def __init__(self, n_consumers: int, top_k: int = 10) -> None:
        if top_k < 1:
            raise ValueError(f"k must be >= 1, got {top_k}")
        self.n = n_consumers
        self.top_k = top_k
        self.gram = np.zeros((n_consumers, n_consumers))
        self.hours_folded = 0

    def fold_hours(self, buffer: np.ndarray, hours: np.ndarray) -> None:
        """Fold complete hour-columns: ``G += B[:, hours] B[:, hours]'``."""
        if hours.size == 0:
            return
        block = buffer[:, hours]
        if np.isnan(block).any():
            raise DataError("cannot fold hour columns containing NaN")
        self.gram += block @ block.T
        self.hours_folded += int(hours.size)

    def unfold_hours(self, buffer: np.ndarray, hours: np.ndarray) -> None:
        """Exact correction: remove previously-folded hour-columns
        (call *before* overwriting them in the buffer)."""
        if hours.size == 0:
            return
        block = buffer[:, hours]
        self.gram -= block @ block.T
        self.hours_folded -= int(hours.size)

    def scores_row(self, consumer: int) -> np.ndarray:
        """Cosine scores of one meter against the whole cohort, from G."""
        norms = np.sqrt(np.maximum(np.diag(self.gram), 0.0))
        safe = np.where(norms > 0.0, norms, 1.0)
        row = self.gram[consumer] / (safe[consumer] * safe)
        if norms[consumer] == 0.0:
            row = np.zeros_like(row)
        row[norms == 0.0] = 0.0
        return clip_scores(row)

    def top_k_all(self, ids: list[str]) -> dict[str, Neighbours]:
        """Exact top-k for every meter from the maintained Gram."""
        if len(ids) != self.n:
            raise DataError(f"{self.n} meters but {len(ids)} ids")
        norms = np.sqrt(np.maximum(np.diag(self.gram), 0.0))
        safe = np.where(norms > 0.0, norms, 1.0)
        zero = norms == 0.0
        results: dict[str, Neighbours] = {}
        for row in range(self.n):
            scores = self.gram[row] / (safe[row] * safe)
            if zero[row]:
                scores = np.zeros_like(scores)
            scores[zero] = 0.0
            scores = clip_scores(scores)
            results[ids[row]] = [
                (ids[i], s) for i, s in rank_row(scores, row, self.top_k)
            ]
        return results


class CentroidIndex:
    """Centroid-pruned *approximate* candidate pruner for live queries.

    A few rounds of spherical k-means over the normalized folded vectors
    bucket the cohort; a query scores its meter only against the buckets
    whose centroids are most similar, plus enough extra buckets to reach
    the requested candidate budget.  Cheap to rebuild (the plane does so
    on demand after folds), explicitly approximate between rebuilds and
    never consulted at window close.
    """

    def __init__(
        self,
        buffer: np.ndarray,
        n_clusters: int | None = None,
        iterations: int = 4,
        seed: int = 0,
    ) -> None:
        matrix = np.asarray(buffer, dtype=np.float64)
        n = matrix.shape[0]
        norms = np.linalg.norm(matrix, axis=1)
        safe = np.where(norms > 0.0, norms, 1.0)
        self._unit = matrix / safe[:, None]
        self._unit[norms == 0.0] = 0.0
        c = n_clusters or max(1, int(np.sqrt(n)))
        c = min(c, n)
        rng = np.random.default_rng(seed)
        centroids = self._unit[rng.choice(n, size=c, replace=False)]
        assign = np.zeros(n, dtype=np.int64)
        for _ in range(iterations):
            sims = self._unit @ centroids.T
            assign = sims.argmax(axis=1)
            for j in range(c):
                members = self._unit[assign == j]
                if members.shape[0] == 0:
                    continue
                mean = members.sum(axis=0)
                norm = np.linalg.norm(mean)
                if norm > 0:
                    centroids[j] = mean / norm
        self.centroids = centroids
        self.assign = assign
        self.buckets = [np.flatnonzero(assign == j) for j in range(c)]

    def candidates(self, consumer: int, budget: int) -> np.ndarray:
        """Meter indices worth scoring for this query, nearest buckets
        first, until at least ``budget`` candidates are gathered."""
        order = np.argsort(-(self.centroids @ self._unit[consumer]))
        picked: list[np.ndarray] = []
        total = 0
        for j in order:
            bucket = self.buckets[int(j)]
            picked.append(bucket)
            total += bucket.size
            if total >= budget + 1:  # +1: the meter itself is excluded later
                break
        return np.concatenate(picked) if picked else np.array([], dtype=np.int64)

    def query(
        self,
        consumer: int,
        ids: list[str],
        k: int = 10,
        oversample: int = 4,
    ) -> Neighbours:
        """Approximate top-k of one meter, scoring only pruned candidates.

        Unlike :meth:`StreamingSimilarityState.top_k_all` this never
        touches the O(n^2) Gram: it scores ``O(oversample * k)`` buffer
        rows, which is the regime a million-meter cohort would run in.
        """
        cand = self.candidates(consumer, budget=oversample * k)
        scores = np.full(self._unit.shape[0], -np.inf)
        scores[cand] = clip_scores(self._unit[cand] @ self._unit[consumer])
        pairs = rank_row(scores, consumer, k)
        return [(ids[i], s) for i, s in pairs if np.isfinite(s)]
