"""Durable streaming: write-ahead log, checkpoints, crash recovery.

PR 8's :class:`~repro.streaming.window.StreamingPlane` holds every open
window, RLS accumulator, and Gram matrix only in process memory; this
module makes a plane survive crashes without re-reading the source:

* **WAL** — :class:`WriteAheadLog`: every applied
  :class:`~repro.streaming.events.ReadingBatch` (and a note per batch of
  late/quarantine decisions and window emissions) becomes one
  CRC32-framed record in an append-only segment file, fsync'd before the
  plane's effects become externally visible and rotated atomically at a
  size bound.  A torn record at the physical tail of the *last* segment
  is tolerated (that is exactly what a crash mid-append leaves behind);
  anywhere else it is corruption and raises
  :class:`~repro.exceptions.WalCorruptError`.
* **Checkpoints** — :class:`PlaneCheckpoint`: a periodic pickle snapshot
  of the whole plane (all four incremental task states, watermark,
  retention buffers, quality report, epoch counter) plus the WAL
  position and source sequence number, written with the
  write-temp + fsync + rename discipline.  The newest ``keep``
  checkpoints are retained; WAL segments wholly covered by the *oldest
  retained* checkpoint are deleted (truncation past the sink frontier —
  every checkpoint happens after the sink committed its epochs).
* **Recovery** — :meth:`DurablePlane.recover`: load the newest valid
  checkpoint, replay the WAL tail through the plane, and route replayed
  emissions back through the (epoch-guarded, hence exactly-once) sink.
  Because the plane is deterministic, the recovered in-memory state is
  *bit-identical* to the uncrashed run for histogram/3-line and within
  the documented tolerances for PAR/similarity — the chaos harness
  (``benchmarks/bench_durability.py``) asserts this for every
  ``REPRO_INJECT_CRASH`` kill point.

Durability contract per :meth:`DurablePlane.ingest` call::

    validate -> WAL append (batch + notes) -> fsync -> apply to plane
             -> sink writes (epoch-keyed)  -> checkpoint on window close

The WAL append happens *before* the batch mutates the plane (hence
"write-ahead"): a checkpoint can only ever snapshot effects whose cause
is already on disk, so checkpoint + tail replay never misses a batch.
Validation runs before the append so a poison batch (for example a
consumer index outside the cohort) raises *without* entering the log —
replay must never be wedged by a batch that could not be applied.
Batches are only acknowledged (``last_seq`` advances) after the fsync,
so a crash mid-append loses at most the torn batch, which the source
re-sends; re-sends of already-logged sequence numbers are skipped.
"""

from __future__ import annotations

import copy
import os
import pickle
import struct
import time
import zlib
from dataclasses import dataclass, replace
from pathlib import Path
from typing import Any, Callable, Iterator

import numpy as np

from repro.exceptions import (
    DataError,
    RecoveryError,
    StreamingError,
    WalCorruptError,
    WalError,
)
from repro.resilience.crashpoints import (
    active_plan,
    set_crash_plan,
    should_crash,
    trip,
)
from repro.streaming.events import ReadingBatch
from repro.streaming.window import StreamConfig, StreamingPlane, WindowResult

# --------------------------------------------------------------------------
# Record framing (shared by WAL segments, feed files, dead-letter files)
# --------------------------------------------------------------------------

#: Every record starts with this magic (torn/garbage detection).
RECORD_MAGIC = b"WALR"

#: Header: magic, lsn, seq, kind, payload length — followed by a CRC32
#: over the header-sans-CRC plus payload, then the payload bytes.
_HEADER = struct.Struct("<4sQqBI")
_CRC = struct.Struct("<I")
HEADER_BYTES = _HEADER.size + _CRC.size

KIND_BATCH = 0
KIND_NOTE = 1
KIND_EOS = 2


@dataclass(frozen=True)
class WalRecord:
    """One decoded log record."""

    lsn: int
    #: Source sequence number of a batch record (-1 when untracked).
    seq: int
    kind: int
    payload: bytes

    @property
    def batch(self) -> ReadingBatch:
        if self.kind != KIND_BATCH:
            raise WalError(f"record {self.lsn} is not a batch record")
        return decode_batch(self.payload)

    @property
    def note(self) -> dict:
        if self.kind != KIND_NOTE:
            raise WalError(f"record {self.lsn} is not a note record")
        import json

        return json.loads(self.payload.decode("utf-8"))


def encode_batch(batch: ReadingBatch) -> bytes:
    """Serialize a batch's four columns (canonical dtypes) to bytes."""
    consumer = np.ascontiguousarray(batch.consumer, dtype=np.int64)
    hour = np.ascontiguousarray(batch.hour, dtype=np.int64)
    consumption = np.ascontiguousarray(batch.consumption, dtype=np.float64)
    temperature = np.ascontiguousarray(batch.temperature, dtype=np.float64)
    n = struct.pack("<Q", len(batch))
    return b"".join(
        (n, consumer.tobytes(), hour.tobytes(),
         consumption.tobytes(), temperature.tobytes())
    )


def decode_batch(payload: bytes) -> ReadingBatch:
    """Inverse of :func:`encode_batch`."""
    (n,) = struct.unpack_from("<Q", payload, 0)
    expected = 8 + n * 8 * 4
    if len(payload) != expected:
        raise WalCorruptError(
            f"batch payload is {len(payload)} bytes, expected {expected}"
        )
    off = 8
    cols = []
    for dtype in (np.int64, np.int64, np.float64, np.float64):
        cols.append(np.frombuffer(payload, dtype=dtype, count=n, offset=off).copy())
        off += n * 8
    return ReadingBatch(*cols)


def encode_record(lsn: int, seq: int, kind: int, payload: bytes) -> bytes:
    """Frame one record: header + CRC32(header-sans-CRC + payload)."""
    header = _HEADER.pack(RECORD_MAGIC, lsn, seq, kind, len(payload))
    crc = zlib.crc32(payload, zlib.crc32(header))
    return header + _CRC.pack(crc) + payload


def iter_records(data: bytes) -> Iterator[tuple[WalRecord, int]]:
    """Yield ``(record, end_offset)`` until the data ends or turns invalid.

    Stops (without raising) at the first byte range that does not parse
    as a valid record; the caller decides whether that position is a
    tolerable torn tail or corruption.
    """
    offset = 0
    total = len(data)
    while offset + HEADER_BYTES <= total:
        magic, lsn, seq, kind, length = _HEADER.unpack_from(data, offset)
        if magic != RECORD_MAGIC:
            return
        end = offset + HEADER_BYTES + length
        if end > total:
            return
        (crc,) = _CRC.unpack_from(data, offset + _HEADER.size)
        payload = data[offset + HEADER_BYTES : end]
        expect = zlib.crc32(payload, zlib.crc32(data[offset : offset + _HEADER.size]))
        if crc != expect:
            return
        yield WalRecord(lsn=lsn, seq=seq, kind=kind, payload=payload), end
        offset = end


# --------------------------------------------------------------------------
# Write-ahead log
# --------------------------------------------------------------------------

def _fsync_dir(directory: Path) -> None:
    fd = os.open(directory, os.O_RDONLY)
    try:
        os.fsync(fd)
    finally:
        os.close(fd)


def _segment_name(first_lsn: int) -> str:
    return f"wal-{first_lsn:016d}.seg"


class WriteAheadLog:
    """Segmented, CRC-framed, fsync'd append-only log of batches.

    One instance owns a directory of ``wal-<first_lsn>.seg`` files.  The
    active (last) segment is held open for buffered appends;
    :meth:`sync` flushes and fsyncs it — the durability point a caller
    acknowledges batches at — and rotates to a fresh segment once the
    active one exceeds ``segment_max_bytes`` (rotation is atomic: the
    old segment is fsync'd and closed before the new file is created and
    the directory entry fsync'd).
    """

    def __init__(
        self,
        directory: str | Path,
        *,
        segment_max_bytes: int = 8 << 20,
        sync: bool = True,
    ) -> None:
        self.directory = Path(directory)
        self.directory.mkdir(parents=True, exist_ok=True)
        self.segment_max_bytes = int(segment_max_bytes)
        self.sync_enabled = bool(sync)
        self._file: Any = None
        self._active: Path | None = None
        self._active_size = 0
        self.next_lsn = 0
        self._open_for_append()

    # -- segment bookkeeping ------------------------------------------------

    def segments(self) -> list[Path]:
        """Segment files in LSN order."""
        return sorted(self.directory.glob("wal-*.seg"))

    def _open_for_append(self) -> None:
        """Position the log at the clean tail of the last segment.

        A torn record at the tail (crash mid-append) is discarded by
        truncating the file at the last valid record boundary — the
        batch it held was never acknowledged, so dropping it is correct.
        """
        segments = self.segments()
        if not segments:
            self._start_segment(first_lsn=0)
            return
        last = segments[-1]
        data = last.read_bytes()
        tail = 0
        last_lsn = self._first_lsn(last) - 1
        for record, end in iter_records(data):
            last_lsn = record.lsn
            tail = end
        if tail < len(data):
            with open(last, "r+b") as handle:
                handle.truncate(tail)
                handle.flush()
                os.fsync(handle.fileno())
        self.next_lsn = last_lsn + 1
        self._active = last
        self._file = open(last, "ab")
        self._active_size = tail

    @staticmethod
    def _first_lsn(path: Path) -> int:
        try:
            return int(path.stem.split("-", 1)[1])
        except (IndexError, ValueError):
            raise WalError(f"bad segment name {path.name!r}") from None

    def _start_segment(self, first_lsn: int) -> None:
        path = self.directory / _segment_name(first_lsn)
        self._file = open(path, "ab")
        self._active = path
        self._active_size = path.stat().st_size
        _fsync_dir(self.directory)

    # -- appending ----------------------------------------------------------

    def append_batch(self, batch: ReadingBatch, seq: int = -1) -> int:
        """Append one batch record (buffered; durable after :meth:`sync`)."""
        return self._append(seq, KIND_BATCH, encode_batch(batch))

    def append_note(self, note: dict) -> int:
        """Append one JSON note record (decisions, emissions, markers)."""
        import json

        payload = json.dumps(note, sort_keys=True).encode("utf-8")
        return self._append(-1, KIND_NOTE, payload)

    def _append(self, seq: int, kind: int, payload: bytes) -> int:
        if self._file is None:
            raise WalError("write-ahead log is closed")
        lsn = self.next_lsn
        record = encode_record(lsn, seq, kind, payload)
        if should_crash("wal-append"):
            # Stage the evidence a real crash leaves: half a record,
            # flushed to disk, then die.  Recovery must treat it as a
            # torn tail and drop it.
            self._file.write(record[: max(HEADER_BYTES, len(record) // 2)])
            self._file.flush()
            os.fsync(self._file.fileno())
            trip("wal-append")
        self._file.write(record)
        self._active_size += len(record)
        self.next_lsn = lsn + 1
        return lsn

    def sync(self) -> None:
        """Flush + fsync the active segment; rotate if over the bound.

        This is the durability point: records appended before a
        ``sync()`` survive any crash after it.
        """
        if self._file is None:
            raise WalError("write-ahead log is closed")
        self._file.flush()
        if self.sync_enabled:
            os.fsync(self._file.fileno())
        if self._active_size >= self.segment_max_bytes:
            self._file.close()
            self._start_segment(first_lsn=self.next_lsn)

    # -- reading ------------------------------------------------------------

    def replay(self, after_lsn: int = -1) -> Iterator[WalRecord]:
        """Records with ``lsn > after_lsn``, oldest first.

        An invalid byte range is tolerated only at the physical tail of
        the *last* segment (a torn append); anywhere else the log is
        corrupt and :class:`WalCorruptError` names the position.
        """
        segments = self.segments()
        for i, segment in enumerate(segments):
            data = segment.read_bytes()
            tail = 0
            for record, end in iter_records(data):
                tail = end
                if record.lsn > after_lsn:
                    yield record
            if tail < len(data) and i != len(segments) - 1:
                raise WalCorruptError(
                    f"invalid record at byte {tail} of non-final segment "
                    f"{segment.name}"
                )

    def last_lsn(self) -> int:
        """LSN of the last appended record (-1 for an empty log)."""
        return self.next_lsn - 1

    # -- truncation ---------------------------------------------------------

    def truncate_through(self, lsn: int) -> int:
        """Delete whole segments whose records are all ``<= lsn``.

        Only non-active segments are removed (the active one is cheap to
        keep and simplifies the append path).  Returns how many segment
        files were deleted.
        """
        deleted = 0
        segments = self.segments()
        for i, segment in enumerate(segments):
            if segment == self._active:
                continue
            # A segment's records are all <= lsn iff the next segment
            # starts at or below lsn + 1.
            next_first = (
                self._first_lsn(segments[i + 1])
                if i + 1 < len(segments) else self.next_lsn
            )
            if next_first - 1 <= lsn:
                segment.unlink()
                deleted += 1
        if deleted:
            _fsync_dir(self.directory)
        return deleted

    def close(self) -> None:
        if self._file is not None:
            self._file.flush()
            if self.sync_enabled:
                os.fsync(self._file.fileno())
            self._file.close()
            self._file = None


# --------------------------------------------------------------------------
# Checkpoints
# --------------------------------------------------------------------------

#: Checkpoint framing: magic + CRC32 + length, then the pickle.
_CKPT_MAGIC = b"CKPT"
_CKPT_HEADER = struct.Struct("<4sII")


class PlaneCheckpoint:
    """Atomic, CRC-validated snapshots of a plane's full state.

    Files are ``ckpt-<counter>-<wal_lsn>.ckpt``; the counter orders
    them, the embedded WAL LSN tells the log how far a checkpoint
    reaches (for truncation) without opening the file.  Writes go
    through write-temp + fsync + rename + directory-fsync, so a crash
    mid-write leaves the previous checkpoint untouched as the newest
    valid one.
    """

    def __init__(self, directory: str | Path, *, keep: int = 2) -> None:
        if keep < 1:
            raise StreamingError(f"keep must be >= 1, got {keep}")
        self.directory = Path(directory)
        self.directory.mkdir(parents=True, exist_ok=True)
        self.keep = int(keep)

    def _paths(self) -> list[Path]:
        return sorted(self.directory.glob("ckpt-*.ckpt"))

    @staticmethod
    def _parse_name(path: Path) -> tuple[int, int]:
        try:
            _, counter, lsn = path.stem.split("-")
            return int(counter), int(lsn)
        except ValueError:
            raise StreamingError(f"bad checkpoint name {path.name!r}") from None

    def save(self, payload: dict, wal_lsn: int) -> Path:
        """Write one snapshot; returns its path.

        Prunes to the newest ``keep`` checkpoints after the rename.
        """
        existing = self._paths()
        counter = (
            self._parse_name(existing[-1])[0] + 1 if existing else 0
        )
        blob = pickle.dumps(payload, protocol=pickle.HIGHEST_PROTOCOL)
        framed = (
            _CKPT_HEADER.pack(_CKPT_MAGIC, zlib.crc32(blob), len(blob)) + blob
        )
        path = self.directory / f"ckpt-{counter:08d}-{max(wal_lsn, 0):016d}.ckpt"
        tmp = path.with_name(path.name + ".tmp")
        with open(tmp, "wb") as handle:
            if should_crash("checkpoint"):
                # A real crash mid-checkpoint: half the temp file is on
                # disk, the rename never happens.  Recovery must fall
                # back to the previous checkpoint.
                handle.write(framed[: len(framed) // 2])
                handle.flush()
                os.fsync(handle.fileno())
                trip("checkpoint")
            handle.write(framed)
            handle.flush()
            os.fsync(handle.fileno())
        os.replace(tmp, path)
        _fsync_dir(self.directory)
        for old in self._paths()[: -self.keep]:
            # missing_ok: an orphaned forked writer from a crashed
            # process may prune concurrently with the recovered one.
            old.unlink(missing_ok=True)
        return path

    def load_latest(self) -> tuple[dict, int] | None:
        """Newest checkpoint that validates, as ``(payload, wal_lsn)``.

        Silently skips invalid files (torn temp leftovers cannot occur —
        they never get renamed — but disk corruption is tolerated by
        falling back to the previous snapshot).
        """
        for path in reversed(self._paths()):
            try:
                data = path.read_bytes()
                magic, crc, length = _CKPT_HEADER.unpack_from(data, 0)
                blob = data[_CKPT_HEADER.size : _CKPT_HEADER.size + length]
                if (
                    magic != _CKPT_MAGIC
                    or len(blob) != length
                    or zlib.crc32(blob) != crc
                ):
                    continue
                payload = pickle.loads(blob)
            except (OSError, struct.error, pickle.PickleError):
                continue
            return payload, self._parse_name(path)[1]
        return None

    def oldest_retained_lsn(self) -> int:
        """WAL LSN of the oldest kept checkpoint (-1 when none exist).

        The log may truncate segments wholly below this: every retained
        checkpoint can still replay its tail.
        """
        paths = self._paths()
        if not paths:
            return -1
        return self._parse_name(paths[0])[1]


# --------------------------------------------------------------------------
# Durable plane
# --------------------------------------------------------------------------

def _snapshot_plane(plane: StreamingPlane) -> StreamingPlane:
    """A checkpoint-sized shallow clone of ``plane``.

    Two things are deliberately left out of snapshots because they are
    pure observability and would otherwise dominate checkpoint cost
    (and grow without bound over the stream's lifetime):

    - ``emitted`` — the full finalized-result history.  Recovery rebuilds
      the post-checkpoint suffix from WAL replay; everything older is
      already committed in the sink.
    - each retained window's cached ``result`` — its n² similarity pairs
      and per-meter dicts pickle slower than all the numeric task state
      combined.  A stub keeps the metadata a late revision actually
      needs (most importantly the revision counter); the payload is
      re-derivable from the window's retained buffers.
    """
    clone = copy.copy(plane)
    clone.emitted = []
    windows = {}
    for index, state in plane.windows.items():
        if state.result is not None:
            state = copy.copy(state)
            state.result = replace(state.result, results={}, dataset=None)
        windows[index] = state
    clone.windows = windows
    return clone


@dataclass
class RecoveryStats:
    """What a :meth:`DurablePlane.recover` call did."""

    had_checkpoint: bool = False
    checkpoint_lsn: int = -1
    replayed_batches: int = 0
    replayed_emissions: int = 0
    recovery_s: float = 0.0


class DurablePlane:
    """A :class:`StreamingPlane` wrapped in WAL + checkpoint durability.

    Layout of ``run_dir``::

        run_dir/
          wal/wal-<first_lsn>.seg      # CRC-framed batch + note records
          checkpoints/ckpt-*.ckpt      # atomic full-plane snapshots

    Construction refuses a directory that already holds state (use
    :meth:`recover`, or :meth:`open` to dispatch automatically).  The
    ``strict`` late ladder is refused outright: a strict plane raises on
    bad data *after* the batch is logged, which would wedge replay —
    durable planes run ``repair`` or ``quarantine``.
    """

    def __init__(
        self,
        consumer_ids: list[str],
        config: StreamConfig | None = None,
        *,
        run_dir: str | Path,
        sink: Any = None,
        checkpoint_every: int = 0,
        segment_max_bytes: int = 8 << 20,
        keep_checkpoints: int = 2,
        sync: bool = True,
        fork_checkpoints: bool = True,
        _plane: StreamingPlane | None = None,
    ) -> None:
        self.run_dir = Path(run_dir)
        wal_dir = self.run_dir / "wal"
        ckpt_dir = self.run_dir / "checkpoints"
        fresh = _plane is None
        if fresh and (
            any(wal_dir.glob("wal-*.seg")) or any(ckpt_dir.glob("ckpt-*.ckpt"))
        ):
            raise StreamingError(
                f"{self.run_dir} already holds a durable plane; use "
                "DurablePlane.recover (or DurablePlane.open)"
            )
        self.plane = _plane or StreamingPlane(consumer_ids, config)
        if self.plane.ladder.strict:
            raise StreamingError(
                "a durable plane cannot run the 'strict' ladder: strict "
                "raises after the batch is logged, which would wedge WAL "
                "replay; use 'repair' or 'quarantine'"
            )
        if list(consumer_ids) != self.plane.ids:
            raise RecoveryError(
                "recovered plane's consumer cohort does not match the "
                "requested consumer_ids"
            )
        self.sink = sink
        self.checkpoint_every = int(checkpoint_every)
        self.keep_checkpoints = int(keep_checkpoints)
        self.wal = WriteAheadLog(
            wal_dir, segment_max_bytes=segment_max_bytes, sync=sync
        )
        self.checkpoints = PlaneCheckpoint(ckpt_dir, keep=keep_checkpoints)
        #: Highest acknowledged source sequence number (-1 = none).
        self.last_seq = -1
        self._since_checkpoint = 0
        self.fork_checkpoints = bool(fork_checkpoints) and hasattr(os, "fork")
        self._checkpoint_pid: int | None = None
        self.recovery = RecoveryStats()

    # -- construction paths -------------------------------------------------

    @classmethod
    def recover(
        cls,
        consumer_ids: list[str],
        config: StreamConfig | None = None,
        *,
        run_dir: str | Path,
        sink: Any = None,
        **kwargs: Any,
    ) -> "DurablePlane":
        """Restore a plane from its checkpoint + WAL tail.

        Replayed batches flow through the normal ingest path — including
        the sink, whose epoch guard turns redelivered emissions into
        no-ops — so after recovery the plane, the store, and ``last_seq``
        are exactly where the crashed process would have been had it
        acknowledged only what reached disk.
        """
        t0 = time.perf_counter()
        run_dir = Path(run_dir)
        stats = RecoveryStats()
        loaded = PlaneCheckpoint(run_dir / "checkpoints").load_latest()
        plane: StreamingPlane | None = None
        last_seq = -1
        after_lsn = -1
        if loaded is not None:
            payload, _ = loaded
            plane = payload["plane"]
            last_seq = int(payload["last_seq"])
            after_lsn = int(payload["wal_lsn"])
            stats.had_checkpoint = True
            stats.checkpoint_lsn = after_lsn
            if plane.ids != list(consumer_ids):
                raise RecoveryError(
                    f"checkpoint in {run_dir} covers a different cohort "
                    f"({len(plane.ids)} meters vs {len(consumer_ids)})"
                )
        durable = cls(
            list(consumer_ids),
            config,
            run_dir=run_dir,
            sink=sink,
            _plane=plane or StreamingPlane(list(consumer_ids), config),
            **kwargs,
        )
        durable.last_seq = last_seq
        for record in durable.wal.replay(after_lsn):
            if record.kind != KIND_BATCH:
                continue
            try:
                emitted = durable.plane.ingest(record.batch)
            except Exception as exc:
                raise RecoveryError(
                    f"WAL replay failed at lsn {record.lsn}: {exc}"
                ) from exc
            stats.replayed_batches += 1
            stats.replayed_emissions += len(emitted)
            if record.seq >= 0:
                durable.last_seq = max(durable.last_seq, record.seq)
            if durable.sink is not None:
                for result in emitted:
                    durable.sink.write(result)
        stats.recovery_s = time.perf_counter() - t0
        durable.recovery = stats
        return durable

    @classmethod
    def open(
        cls,
        consumer_ids: list[str],
        config: StreamConfig | None = None,
        *,
        run_dir: str | Path,
        **kwargs: Any,
    ) -> "DurablePlane":
        """Recover if ``run_dir`` holds state, else start fresh."""
        run_dir = Path(run_dir)
        existing = (
            any((run_dir / "wal").glob("wal-*.seg"))
            or any((run_dir / "checkpoints").glob("ckpt-*.ckpt"))
        )
        if existing:
            return cls.recover(consumer_ids, config, run_dir=run_dir, **kwargs)
        return cls(consumer_ids, config, run_dir=run_dir, **kwargs)

    # -- ingest -------------------------------------------------------------

    def _validate(self, batch: ReadingBatch) -> None:
        """The checks the plane would fail on, *before* the WAL append.

        Anything that raises here never enters the log, so replay can
        never meet a batch that cannot be applied.
        """
        if len(batch) == 0:
            return
        if batch.consumer.min() < 0 or batch.consumer.max() >= self.plane.n:
            raise DataError(
                f"consumer index out of range 0..{self.plane.n - 1}"
            )
        if batch.hour.min() < 0:
            raise DataError("negative event hour")

    def ingest(self, batch: ReadingBatch, seq: int = -1) -> list[WindowResult]:
        """Durably apply one batch; returns the emissions it caused.

        ``seq`` is the source's monotonically increasing sequence number
        (-1 = untracked).  Re-sends of acknowledged sequence numbers are
        dropped — that is what makes at-least-once delivery from the
        source exactly-once end to end.
        """
        if seq >= 0 and seq <= self.last_seq:
            return []
        self._validate(batch)
        if len(batch) == 0:
            return []
        self.wal.append_batch(batch, seq)
        quality_mark = (
            len(self.plane.report.consumers), self.plane.report.n_clean
        )
        emitted = self.plane.ingest(batch)
        if (
            len(self.plane.report.consumers), self.plane.report.n_clean
        ) != quality_mark:
            # Late/quarantine/repair decisions changed the quality
            # report: note it so the log is self-describing.
            self.wal.append_note({
                "kind": "quality",
                "seq": seq,
                "consumers": len(self.plane.report.consumers),
                "n_clean": self.plane.report.n_clean,
            })
        for result in emitted:
            self.wal.append_note({
                "kind": "emit",
                "window": result.index,
                "revision": result.revision,
                "epoch": result.epoch,
                "dropped": len(result.dropped),
            })
        self.wal.sync()
        if seq >= 0:
            self.last_seq = seq
        if self.sink is not None:
            for result in emitted:
                self.sink.write(result)
        self._since_checkpoint += 1
        first_closes = any(r.revision == 0 for r in emitted)
        if first_closes or (
            self.checkpoint_every
            and self._since_checkpoint >= self.checkpoint_every
        ):
            self.checkpoint()
        return emitted

    # -- checkpointing ------------------------------------------------------

    def checkpoint(self) -> Path | None:
        """Snapshot the plane now and truncate the WAL behind it.

        Called automatically on every first window close (the sink
        frontier advanced) and every ``checkpoint_every`` ingests; safe
        to call any time.

        When ``fork_checkpoints`` is on (the default where ``os.fork``
        exists), the snapshot is written from a forked child against its
        copy-on-write view of the plane — the ingest path pays only the
        fork, not the serialize+fsync.  At most one writer is in flight:
        the previous child is reaped (and the WAL truncated behind its
        now-durable file) before the next fork.  Returns ``None`` when
        the write was handed to a child.  Whenever a ``checkpoint``
        crash plan is armed the write runs synchronously in-process so
        injected kill points keep their exact per-process hit counts.
        """
        self._reap_checkpoint(block=True)
        lsn = self.wal.last_lsn()
        payload = {
            "plane": _snapshot_plane(self.plane),
            "last_seq": self.last_seq,
            "wal_lsn": lsn,
        }
        self._since_checkpoint = 0
        plan = active_plan()
        chaos_armed = (
            plan is not None and plan.point == "checkpoint" and not plan.spent
        )
        if self.fork_checkpoints and not chaos_armed:
            pid = os.fork()
            if pid == 0:
                # Child: write the snapshot against the COW view and
                # exit without flushing inherited buffers or fds.
                try:
                    set_crash_plan(None)
                    self.checkpoints.save(payload, wal_lsn=lsn)
                    os._exit(0)
                except BaseException:
                    os._exit(1)
            self._checkpoint_pid = pid
            return None
        path = self.checkpoints.save(payload, wal_lsn=lsn)
        # Truncate past the oldest *retained* checkpoint, not the one
        # just written: if the newest file is ever unreadable, the
        # previous one must still find its WAL tail intact.
        self.wal.truncate_through(self.checkpoints.oldest_retained_lsn())
        return path

    def _reap_checkpoint(self, block: bool) -> None:
        """Collect an in-flight checkpoint child, then truncate the WAL.

        Truncation is deferred to the reap on purpose: only once the
        child's rename has landed does ``oldest_retained_lsn`` reflect
        the new file, and a failed child (non-zero exit) must leave the
        log untouched so the previous checkpoint keeps its tail.
        """
        if self._checkpoint_pid is None:
            return
        pid, status = os.waitpid(
            self._checkpoint_pid, 0 if block else os.WNOHANG
        )
        if pid == 0:
            return
        self._checkpoint_pid = None
        if os.waitstatus_to_exitcode(status) == 0:
            self.wal.truncate_through(self.checkpoints.oldest_retained_lsn())

    def close(self) -> None:
        """Checkpoint and release the WAL file handle."""
        self.checkpoint()
        self._reap_checkpoint(block=True)
        self.wal.close()

    # -- conveniences -------------------------------------------------------

    @property
    def emitted(self) -> list[WindowResult]:
        return self.plane.emitted

    def ingest_many(
        self,
        batches: Iterator[tuple[int, ReadingBatch]] | Iterator[ReadingBatch],
        on_emit: Callable[[WindowResult], None] | None = None,
    ) -> int:
        """Drain an iterable of ``(seq, batch)`` or bare batches."""
        count = 0
        for item in batches:
            seq, batch = (
                item if isinstance(item, tuple) else (-1, item)
            )
            for result in self.ingest(batch, seq=seq):
                if on_emit is not None:
                    on_emit(result)
            count += 1
        return count


def verify_no_duplicate_rows(table: Any, dataset_hours: int) -> None:
    """Assert a sink table holds exactly one row per (meter, hour).

    The v2 store's grid layout makes silent duplication impossible
    *within* the format, so the check is on the time axis: the table
    must cover exactly ``dataset_hours`` hours — a double-append would
    overshoot.  Raises :class:`StreamingError` on mismatch.
    """
    if table.n_hours != dataset_hours:
        raise StreamingError(
            f"table {table.name!r} covers {table.n_hours} hours, expected "
            f"{dataset_hours}: a replayed window was double-appended"
        )
