"""Sharded multi-process streaming: file feed, supervisor, dead letters.

The last piece of ROADMAP item 1: feed the streaming plane from a file
tailer instead of in-process batches, and shard the cohort across worker
processes for true multi-core fleet runs — *without* giving up the
durability story.  Three pieces:

* :class:`FeedWriter` / :class:`FileTailer` — a durable feed file using
  the WAL record framing of :mod:`repro.streaming.durability` (CRC'd,
  fsync'd, torn-tail tolerant): the writer appends ``(seq, batch)``
  records plus a final end-of-stream marker, the tailer follows the file
  as it grows and yields decoded batches.  The feed file *is* the
  at-least-once source: a restarted fleet re-tails it from the start and
  workers drop already-acknowledged sequence numbers.
* :class:`FleetSupervisor` — shards meters contiguously across ``N``
  worker processes, each running its own
  :class:`~repro.streaming.durability.DurablePlane` (own WAL + own
  checkpoints under ``run_dir/shard-XXX``, optionally its own store
  table).  The parent tails the feed, splits each batch by shard, and
  dispatches with **backpressure** — at most ``max_inflight`` unacked
  batches per shard.  Supervision reuses the :mod:`repro.resilience`
  machinery: a dead worker is restarted with
  :class:`~repro.resilience.backoff.BackoffSchedule` delays and recovers
  from its own WAL+checkpoint while the other shards keep draining;
  per-batch :class:`~repro.resilience.backoff.AttemptAccount` s cap how
  often one batch may be blamed for a crash.
* **Dead letters** — a batch that crashes its shard
  ``max_batch_crashes`` times (default twice) is a poison batch: it is
  appended to ``run_dir/deadletter.seg`` (same record framing, plus a
  JSON note naming the shard and error) and dropped from the dispatch
  plan, so one bad producer cannot wedge the fleet.

Exactly-once end to end: the feed delivers at least once, workers skip
``seq <= last_seq`` (their WAL acknowledged it), and the store sink
skips ``epoch <= last_epoch`` (the table committed it).  The chaos
harness (``benchmarks/bench_durability.py``) kills workers at every
``REPRO_INJECT_CRASH`` kill point and asserts the fleet's closed-window
results still converge with zero duplicate rows.
"""

from __future__ import annotations

import os
import queue
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any

import multiprocessing as mp

import numpy as np

from repro.exceptions import FleetError, WorkerCrashError
from repro.resilience.backoff import AttemptAccount, BackoffSchedule
from repro.resilience.crashpoints import crash_here
from repro.streaming.durability import (
    KIND_BATCH,
    KIND_EOS,
    KIND_NOTE,
    DurablePlane,
    WalRecord,
    encode_batch,
    encode_record,
    iter_records,
)
from repro.streaming.events import ReadingBatch
from repro.streaming.window import StreamConfig


# --------------------------------------------------------------------------
# Feed file: writer + tailer
# --------------------------------------------------------------------------

class FeedWriter:
    """Append ``(seq, batch)`` records to a feed file, fsync'd per write."""

    def __init__(self, path: str | Path, *, sync: bool = True) -> None:
        self.path = Path(path)
        self.path.parent.mkdir(parents=True, exist_ok=True)
        self._file = open(self.path, "ab")
        self._sync = bool(sync)
        self.next_seq = 0

    def write_batch(self, batch: ReadingBatch) -> int:
        """Durably append one batch; returns its sequence number."""
        seq = self.next_seq
        record = encode_record(seq, seq, KIND_BATCH, encode_batch(batch))
        self._file.write(record)
        self._file.flush()
        if self._sync:
            os.fsync(self._file.fileno())
        self.next_seq = seq + 1
        return seq

    def close(self, *, end_of_stream: bool = True) -> None:
        """Optionally append the end-of-stream marker, then close."""
        if end_of_stream:
            self._file.write(
                encode_record(self.next_seq, -1, KIND_EOS, b"")
            )
        self._file.flush()
        os.fsync(self._file.fileno())
        self._file.close()


class FileTailer:
    """Follow a feed file as it grows, yielding ``(seq, batch)`` pairs.

    Stops cleanly at the end-of-stream marker.  A partial record at the
    tail is simply "not written yet" — the tailer waits for the rest.
    Raises :class:`FleetError` after ``idle_timeout_s`` of *no progress*
    — no new bytes in the file AND no records parsed — without an
    end-of-stream marker (a dead producer should not hang the fleet
    forever).  Time spent suspended in ``yield`` while records are still
    flowing is progress, not idleness: a slow *consumer* draining a
    finished-but-unterminated feed never trips the timeout as long as
    records keep coming out of the buffer.
    """

    def __init__(
        self,
        path: str | Path,
        *,
        poll_interval_s: float = 0.02,
        idle_timeout_s: float = 30.0,
    ) -> None:
        self.path = Path(path)
        self.poll_interval_s = float(poll_interval_s)
        self.idle_timeout_s = float(idle_timeout_s)

    def __iter__(self):
        buffer = b""
        offset = 0
        last_progress = time.monotonic()
        with open(self.path, "rb") as handle:
            while True:
                # Parse as many complete records as the buffer holds.
                consumed = 0
                view = buffer[offset:]
                done = False
                for record, end in iter_records(view):
                    consumed = end
                    if record.kind == KIND_EOS:
                        done = True
                        break
                    if record.kind == KIND_BATCH:
                        yield record.seq, record.batch
                offset += consumed
                if consumed:
                    # Records parsed (and yielded) count as progress even
                    # when no new bytes arrived — the idle clock must not
                    # tick while the consumer is slowly draining records
                    # that are already on disk.
                    last_progress = time.monotonic()
                if done:
                    return
                chunk = handle.read()
                if chunk:
                    buffer = buffer[offset:] + chunk
                    offset = 0
                    last_progress = time.monotonic()
                    continue
                if time.monotonic() - last_progress > self.idle_timeout_s:
                    raise FleetError(
                        f"feed {self.path} idle for more than "
                        f"{self.idle_timeout_s}s with no end-of-stream marker"
                    )
                time.sleep(self.poll_interval_s)


# --------------------------------------------------------------------------
# Worker process
# --------------------------------------------------------------------------

def _shard_worker(
    shard: int,
    ids: list[str],
    config: StreamConfig | None,
    run_dir: str,
    store_root: str | None,
    table: str,
    checkpoint_every: int,
    sync: bool,
    in_q: Any,
    out_q: Any,
) -> None:
    """One shard's process: recover-or-create a DurablePlane, drain batches.

    Protocol (all via ``out_q``): ``("ready", shard, last_seq)`` once the
    plane is up; ``("ack", shard, seq)`` after each durable ingest;
    ``("done", shard, summary)`` after a clean stop; ``("crash", shard,
    reason)`` best-effort before dying on an error.
    """
    try:
        sink = None
        if store_root is not None:
            # Local import keeps the worker importable without the
            # storage layer when no sink is configured.
            from repro.columnar.partstore import PartitionedStore
            from repro.streaming.sink import StoreSink

            sink = StoreSink(
                PartitionedStore(store_root), table=f"{table}-s{shard:03d}"
            )
        plane = DurablePlane.open(
            ids,
            config,
            run_dir=run_dir,
            sink=sink,
            checkpoint_every=checkpoint_every,
            sync=sync,
        )
        out_q.put(("ready", shard, plane.last_seq))
        while True:
            message = in_q.get()
            if message[0] == "stop":
                plane.close()
                summary = {
                    "shard": shard,
                    "last_seq": plane.last_seq,
                    "readings_ingested": plane.plane.readings_ingested,
                    "emitted": plane.plane.emitted,
                    "recovery": plane.recovery,
                }
                out_q.put(("done", shard, summary))
                return
            _, seq, consumer, hour, consumption, temperature = message
            batch = ReadingBatch.from_arrays(
                consumer, hour, consumption, temperature
            )
            crash_here("fleet-batch")  # chaos: die/hang mid-dispatch
            plane.ingest(batch, seq=seq)
            out_q.put(("ack", shard, seq))
    except BaseException as exc:  # noqa: BLE001 - crash reporting path
        try:
            out_q.put(("crash", shard, repr(exc)))
            # Deterministic flush: close() hands the queue to its feeder
            # thread and join_thread() blocks until every buffered item
            # is on the pipe — unlike a fixed sleep, this cannot race a
            # slow feeder and lose the crash report.
            out_q.close()
            out_q.join_thread()
        finally:
            os._exit(1)


# --------------------------------------------------------------------------
# Supervisor
# --------------------------------------------------------------------------

@dataclass
class FleetConfig:
    """Supervision knobs of a sharded fleet."""

    #: Worker-process planes the cohort is sharded across.
    n_shards: int = 2
    #: Unacknowledged batches allowed in flight per shard (backpressure).
    max_inflight: int = 4
    #: Crashes one batch may cause before it is dead-lettered.
    max_batch_crashes: int = 2
    #: Restarts one shard may consume before the fleet gives up.
    max_restarts_per_shard: int = 8
    #: Delay schedule between a crash and the restart.
    backoff: BackoffSchedule = field(
        default_factory=lambda: BackoffSchedule(
            base_delay_s=0.02, max_delay_s=0.5, jitter=0.0
        )
    )
    #: Seconds to wait for a worker's "ready"/"done" before giving up.
    worker_timeout_s: float = 60.0
    #: Checkpoint cadence passed to each shard's DurablePlane.
    checkpoint_every: int = 0
    #: fsync discipline of shard WALs (tests may disable for speed).
    sync: bool = True
    #: Feed-tailer knobs (used by :meth:`FleetSupervisor.tailer`): how
    #: often to poll the feed file and how long the feed may make no
    #: progress before the tailer declares the producer dead.
    feed_poll_interval_s: float = 0.02
    feed_idle_timeout_s: float = 30.0


@dataclass
class FleetReport:
    """What a fleet run did, per shard and overall."""

    n_shards: int
    shard_ids: list[list[str]]
    batches_dispatched: int = 0
    batches_acked: int = 0
    restarts: dict[int, int] = field(default_factory=dict)
    #: Shards killed by the supervisor for stalling (hung, not dead).
    hung_kills: dict[int, int] = field(default_factory=dict)
    dead_letters: list[tuple[int, int]] = field(default_factory=list)
    summaries: dict[int, dict] = field(default_factory=dict)

    @property
    def total_restarts(self) -> int:
        return sum(self.restarts.values())


class _Shard:
    """Parent-side handle of one worker process."""

    def __init__(self, index: int, ids: list[str]) -> None:
        self.index = index
        self.ids = ids
        self.process: mp.Process | None = None
        self.in_q: Any = None
        self.out_q: Any = None
        #: seq -> shard-local sub-batch, dispatch order (unacked).
        self.pending: dict[int, ReadingBatch] = {}
        self.consecutive_crashes = 0
        self.done: dict | None = None


class FleetSupervisor:
    """Shard a cohort across supervised worker-process durable planes."""

    def __init__(
        self,
        consumer_ids: list[str],
        config: StreamConfig | None = None,
        *,
        run_dir: str | Path,
        fleet: FleetConfig | None = None,
        store_root: str | Path | None = None,
        table: str = "stream",
    ) -> None:
        self.ids = list(consumer_ids)
        self.config = config
        self.fleet = fleet or FleetConfig()
        if self.fleet.n_shards < 1:
            raise FleetError(
                f"n_shards must be >= 1, got {self.fleet.n_shards}"
            )
        if self.fleet.n_shards > len(self.ids):
            raise FleetError(
                f"{self.fleet.n_shards} shards for {len(self.ids)} meters; "
                "shards must not be empty"
            )
        self.run_dir = Path(run_dir)
        self.run_dir.mkdir(parents=True, exist_ok=True)
        self.store_root = None if store_root is None else str(store_root)
        self.table = table
        n = len(self.ids)
        self.shard_size = -(-n // self.fleet.n_shards)  # ceil div
        self._shards = [
            _Shard(i, self.ids[i * self.shard_size : (i + 1) * self.shard_size])
            for i in range(self.fleet.n_shards)
        ]
        self.report = FleetReport(
            n_shards=self.fleet.n_shards,
            shard_ids=[s.ids for s in self._shards],
        )
        #: (shard, seq) -> crash budget for poison-batch detection.
        self._blame: dict[tuple[int, int], AttemptAccount] = {}
        self._skip: set[tuple[int, int]] = set()
        #: Last instant the fleet made progress (ack or crash handled);
        #: the stall detector in :meth:`_pump` measures from here.
        self._last_progress = time.monotonic()

    # -- lifecycle ----------------------------------------------------------

    def _shard_dir(self, index: int) -> Path:
        return self.run_dir / f"shard-{index:03d}"

    @property
    def deadletter_path(self) -> Path:
        return self.run_dir / "deadletter.seg"

    def tailer(self, path: str | Path) -> FileTailer:
        """A feed tailer wired to this fleet's configured knobs."""
        return FileTailer(
            path,
            poll_interval_s=self.fleet.feed_poll_interval_s,
            idle_timeout_s=self.fleet.feed_idle_timeout_s,
        )

    def _spawn(self, shard: _Shard) -> None:
        shard.in_q = mp.Queue()
        shard.out_q = mp.Queue()
        shard.process = mp.Process(
            target=_shard_worker,
            args=(
                shard.index,
                shard.ids,
                self.config,
                str(self._shard_dir(shard.index)),
                self.store_root,
                self.table,
                self.fleet.checkpoint_every,
                self.fleet.sync,
                shard.in_q,
                shard.out_q,
            ),
            daemon=True,
        )
        shard.process.start()
        last_seq = self._await(shard, "ready")
        # Everything the recovered plane already acknowledged counts as
        # acked; re-send the rest in order.
        for seq in sorted(shard.pending):
            if seq <= last_seq:
                shard.pending.pop(seq)
                self.report.batches_acked += 1
            else:
                self._send(shard, seq, shard.pending[seq])

    def _await(self, shard: _Shard, kind: str) -> Any:
        deadline = time.monotonic() + self.fleet.worker_timeout_s
        while True:
            timeout = deadline - time.monotonic()
            if timeout <= 0:
                # Kill the hung process before raising — no zombie may
                # outlive the supervisor's patience.
                if shard.process is not None and shard.process.is_alive():
                    shard.process.kill()
                    shard.process.join(timeout=5.0)
                raise FleetError(
                    f"shard {shard.index} sent no {kind!r} within "
                    f"{self.fleet.worker_timeout_s}s"
                )
            try:
                message = shard.out_q.get(timeout=min(timeout, 0.1))
            except queue.Empty:
                if shard.process is not None and not shard.process.is_alive():
                    raise FleetError(
                        f"shard {shard.index} died before sending {kind!r} "
                        f"(exit code {shard.process.exitcode})"
                    ) from None
                continue
            if message[0] == kind:
                return message[2]
            if message[0] == "ack":
                shard.pending.pop(message[2], None)
                shard.consecutive_crashes = 0
                self.report.batches_acked += 1
                continue
            if message[0] == "crash":
                raise FleetError(
                    f"shard {shard.index} crashed while waiting for "
                    f"{kind!r}: {message[2]}"
                )

    def _send(self, shard: _Shard, seq: int, sub: ReadingBatch) -> None:
        shard.in_q.put((
            "batch", seq,
            sub.consumer, sub.hour, sub.consumption, sub.temperature,
        ))

    # -- dispatch -----------------------------------------------------------

    def _split(self, batch: ReadingBatch) -> dict[int, ReadingBatch]:
        """Shard-local sub-batches (consumer indices rebased per shard)."""
        shard_of = batch.consumer // self.shard_size
        out: dict[int, ReadingBatch] = {}
        for s in np.unique(shard_of):
            sub = batch.take(shard_of == s)
            out[int(s)] = ReadingBatch(
                consumer=sub.consumer - int(s) * self.shard_size,
                hour=sub.hour,
                consumption=sub.consumption,
                temperature=sub.temperature,
            )
        return out

    def _pump(self, block: bool) -> None:
        """Harvest acks/crashes; restart dead shards; kill stalled ones."""
        progressed = False
        for shard in self._shards:
            while True:
                try:
                    message = shard.out_q.get_nowait()
                except (queue.Empty, OSError):
                    break
                if message[0] == "ack":
                    shard.pending.pop(message[2], None)
                    shard.consecutive_crashes = 0
                    self.report.batches_acked += 1
                    progressed = True
                elif message[0] == "crash":
                    # The exit path follows; liveness check handles it.
                    progressed = True
            if shard.process is not None and not shard.process.is_alive():
                if shard.done is None:
                    self._handle_crash(shard)
                    progressed = True
        if progressed:
            self._last_progress = time.monotonic()
        elif (
            time.monotonic() - self._last_progress
            > self.fleet.worker_timeout_s
        ):
            self._kill_stalled()
            self._last_progress = time.monotonic()
        elif block:
            time.sleep(0.01)

    def _kill_stalled(self) -> None:
        """No ack for ``worker_timeout_s``: the shards holding pending
        batches are hung, not dead.  Kill them so the normal crash path
        (:meth:`_pump` -> :meth:`_handle_crash`) restarts each one,
        re-sends its pending batches, and charges the restart budget —
        which is what finally bounds a shard that hangs every time it
        comes back (``WorkerCrashError`` from :meth:`_handle_crash`)."""
        for shard in self._shards:
            if not shard.pending:
                continue
            if shard.process is not None and shard.process.is_alive():
                shard.process.kill()
                shard.process.join(timeout=5.0)
                self.report.hung_kills[shard.index] = (
                    self.report.hung_kills.get(shard.index, 0) + 1
                )

    def _handle_crash(self, shard: _Shard) -> None:
        """Blame, maybe dead-letter, back off, restart, re-send."""
        restarts = self.report.restarts.get(shard.index, 0) + 1
        self.report.restarts[shard.index] = restarts
        if restarts > self.fleet.max_restarts_per_shard:
            raise WorkerCrashError(
                f"shard {shard.index} crashed more than "
                f"{self.fleet.max_restarts_per_shard} times; giving up"
            )
        shard.consecutive_crashes += 1
        suspect = min(shard.pending) if shard.pending else None
        if suspect is not None:
            key = (shard.index, suspect)
            account = self._blame.setdefault(
                key, AttemptAccount(max_attempts=self.fleet.max_batch_crashes)
            )
            account.fail()
            if account.exhausted:
                self._dead_letter(shard, suspect)
        delay = self.fleet.backoff.delay_s(
            attempt=shard.consecutive_crashes, key=f"shard-{shard.index}"
        )
        if delay > 0:
            time.sleep(delay)
        self._spawn(shard)

    def _dead_letter(self, shard: _Shard, seq: int) -> None:
        """Record a poison batch and drop it from the dispatch plan."""
        sub = shard.pending.pop(seq)
        import json

        note = json.dumps({
            "kind": "dead-letter",
            "shard": shard.index,
            "seq": seq,
            "crashes": self.fleet.max_batch_crashes,
        }, sort_keys=True).encode("utf-8")
        with open(self.deadletter_path, "ab") as handle:
            handle.write(encode_record(seq, seq, KIND_NOTE, note))
            handle.write(encode_record(seq, seq, KIND_BATCH, encode_batch(sub)))
            handle.flush()
            os.fsync(handle.fileno())
        self._skip.add((shard.index, seq))
        self.report.dead_letters.append((shard.index, seq))

    def dead_letters(self) -> list[WalRecord]:
        """Decode the dead-letter file's records (notes + batches)."""
        if not self.deadletter_path.exists():
            return []
        return [
            record
            for record, _ in iter_records(self.deadletter_path.read_bytes())
        ]

    # -- the run loop -------------------------------------------------------

    def run(self, feed: Any) -> FleetReport:
        """Drain a feed — a :class:`FileTailer` or any iterable of
        ``(seq, batch)`` — through the fleet; returns the report.

        Blocks until every batch is acknowledged and every shard has
        checkpointed and stopped.
        """
        for shard in self._shards:
            self._spawn(shard)
        self._last_progress = time.monotonic()
        try:
            for seq, batch in feed:
                for index, sub in self._split(batch).items():
                    shard = self._shards[index]
                    if (index, seq) in self._skip:
                        continue
                    while len(shard.pending) >= self.fleet.max_inflight:
                        self._pump(block=True)
                        if (index, seq) in self._skip:
                            break
                    if (index, seq) in self._skip:
                        continue
                    shard.pending[seq] = sub
                    if shard.process is not None and shard.process.is_alive():
                        self._send(shard, seq, sub)
                    # A dead process is restarted by _pump; _spawn
                    # re-sends everything pending.
                    self.report.batches_dispatched += 1
            self._last_progress = time.monotonic()
            while any(s.pending for s in self._shards):
                self._pump(block=True)
            for shard in self._shards:
                shard.in_q.put(("stop",))
                shard.done = self._await(shard, "done")
                self.report.summaries[shard.index] = shard.done
        finally:
            for shard in self._shards:
                if shard.process is not None and shard.process.is_alive():
                    shard.process.terminate()
                if shard.process is not None:
                    shard.process.join(timeout=5.0)
        return self.report
