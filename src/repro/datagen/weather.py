"""Synthetic hourly outdoor-temperature series.

The paper pairs every consumption series with the hourly temperature series
of the southern-Ontario city the data came from (footnote 6).  This model
reproduces that climate's relevant structure:

* a seasonal sinusoid from roughly -10 C mean in late January to +22 C mean
  in late July (annual mean ~6 C, amplitude ~16 C);
* a diurnal sinusoid (coolest near 5am, warmest mid-afternoon) whose
  amplitude is larger in summer;
* weather fronts modeled as a slow AR(1) process plus hourly AR(1) noise.

The result spans roughly -25 C to +35 C over a year, which is what the
3-line algorithm's heating/cooling branches (paper Figure 1's x-axis) need.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.timeseries.calendar import HOURS_PER_DAY, HOURS_PER_YEAR


@dataclass(frozen=True)
class WeatherConfig:
    """Parameters of the synthetic climate."""

    annual_mean_c: float = 6.0
    seasonal_amplitude_c: float = 16.0
    #: Day of year (0-based) on which the seasonal minimum falls (late Jan).
    coldest_day: int = 25
    diurnal_amplitude_c: float = 4.0
    #: Extra diurnal amplitude in midsummer relative to midwinter.
    diurnal_summer_boost_c: float = 2.0
    #: Hour of day of the diurnal minimum.
    coldest_hour: int = 5
    #: Standard deviation of the day-scale weather-front process.
    front_sigma_c: float = 3.5
    #: AR(1) coefficient of the front process (per day).
    front_phi: float = 0.85
    #: Standard deviation of hour-scale noise.
    hourly_sigma_c: float = 0.6
    #: AR(1) coefficient of hourly noise.
    hourly_phi: float = 0.7


def _ar1(n: int, phi: float, sigma: float, rng: np.random.Generator) -> np.ndarray:
    """Stationary AR(1) path of length ``n`` with marginal std ``sigma``."""
    innovations = rng.normal(0.0, sigma * np.sqrt(1 - phi * phi), size=n)
    out = np.empty(n)
    state = rng.normal(0.0, sigma)
    for i in range(n):
        state = phi * state + innovations[i]
        out[i] = state
    return out


def make_temperature_series(
    n_hours: int = HOURS_PER_YEAR,
    config: WeatherConfig | None = None,
    seed: int = 7,
) -> np.ndarray:
    """Return an hourly temperature series (degrees C) of length ``n_hours``.

    Deterministic for a given ``(n_hours, config, seed)``.
    """
    cfg = config or WeatherConfig()
    rng = np.random.default_rng(seed)
    t = np.arange(n_hours)
    day = t / HOURS_PER_DAY

    seasonal = cfg.annual_mean_c - cfg.seasonal_amplitude_c * np.cos(
        2 * np.pi * (day - cfg.coldest_day) / 365.0
    )
    # Summer factor in [0, 1]: 0 on the coldest day, 1 half a year later.
    summer = 0.5 - 0.5 * np.cos(2 * np.pi * (day - cfg.coldest_day) / 365.0)
    diurnal_amp = cfg.diurnal_amplitude_c + cfg.diurnal_summer_boost_c * summer
    hour = t % HOURS_PER_DAY
    diurnal = -diurnal_amp * np.cos(
        2 * np.pi * (hour - cfg.coldest_hour) / HOURS_PER_DAY
    )

    n_days = int(np.ceil(n_hours / HOURS_PER_DAY))
    fronts_daily = _ar1(n_days, cfg.front_phi, cfg.front_sigma_c, rng)
    fronts = np.repeat(fronts_daily, HOURS_PER_DAY)[:n_hours]
    noise = _ar1(n_hours, cfg.hourly_phi, cfg.hourly_sigma_c, rng)

    return seasonal + diurnal + fronts + noise
