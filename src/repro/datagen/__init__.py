"""Synthetic data substrate.

The paper used a private data set of 27,300 consumers from a southern-Ontario
utility.  That data is unavailable, so this subpackage synthesizes a *seed*
data set with the same structure: a regional hourly temperature series with
cold winters and warm summers (:mod:`repro.datagen.weather`) and consumers
composed of archetypal daily-activity profiles plus thermal response
(:mod:`repro.datagen.seed`).  The paper's own generator
(:mod:`repro.core.generator`) then scales the seed up, exactly as the paper
scales its real seed.
"""

from repro.datagen.seed import SeedConfig, make_seed_dataset
from repro.datagen.weather import WeatherConfig, make_temperature_series

__all__ = [
    "SeedConfig",
    "WeatherConfig",
    "make_seed_dataset",
    "make_temperature_series",
]
