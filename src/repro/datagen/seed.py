"""Synthetic seed data set — the stand-in for the paper's private real data.

The paper's seed is 27,300 real consumers from a southern-Ontario utility.
We synthesize consumers with the structure the paper's algorithms are built
to extract (Sections 3-4):

* a *daily activity profile*: temperature-independent load by hour of day,
  drawn from a library of household archetypes (morning-peak commuter,
  evening-peak family, flat retiree, night owl, nine-to-five-away, ...)
  individually perturbed so consumers within an archetype differ;
* a *thermal response*: electric-heating gradient below a balance
  temperature and air-conditioning gradient above it, with archetypes for
  gas-heated (tiny heating slope), electrically heated, AC-heavy, and
  neither;
* weekday/weekend modulation and multiplicative + additive noise.

Consumption at hour t is::

    activity[hour(t)] * weekday_factor * (1 + lognoise)
      + heat_g * max(0, t_heat - T[t]) + cool_g * max(0, T[t] - t_cool)
      + base_noise,   floored at a small non-negative standby load

which is exactly the decomposition (Figure 2 of the paper) that PAR and
3-line recover, so the benchmark exercises the same code paths it would on
real data — while remaining fully reproducible from a seed integer.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.timeseries.calendar import HOURS_PER_DAY, HOURS_PER_YEAR
from repro.timeseries.series import Dataset
from repro.datagen.weather import WeatherConfig, make_temperature_series

#: Hourly shapes (24 values, kWh) of the activity archetypes.  Values are
#: plausible whole-house temperature-independent loads.
_ARCHETYPES: dict[str, list[float]] = {
    "morning_peak": [
        0.30, 0.28, 0.27, 0.27, 0.30, 0.55, 1.10, 1.40, 1.05, 0.60, 0.50,
        0.50, 0.52, 0.50, 0.48, 0.52, 0.65, 0.85, 0.95, 0.90, 0.80, 0.65,
        0.48, 0.35,
    ],
    "evening_peak": [
        0.35, 0.30, 0.28, 0.28, 0.30, 0.40, 0.60, 0.75, 0.65, 0.55, 0.52,
        0.55, 0.58, 0.55, 0.55, 0.62, 0.90, 1.35, 1.65, 1.55, 1.25, 0.95,
        0.65, 0.45,
    ],
    "flat_daytime": [
        0.40, 0.38, 0.37, 0.37, 0.38, 0.45, 0.60, 0.72, 0.80, 0.82, 0.84,
        0.86, 0.85, 0.83, 0.82, 0.82, 0.85, 0.90, 0.92, 0.88, 0.78, 0.65,
        0.52, 0.44,
    ],
    "night_owl": [
        0.85, 0.80, 0.70, 0.55, 0.42, 0.38, 0.38, 0.42, 0.45, 0.48, 0.50,
        0.55, 0.58, 0.58, 0.60, 0.62, 0.68, 0.75, 0.85, 0.95, 1.05, 1.10,
        1.05, 0.95,
    ],
    "away_workday": [
        0.25, 0.24, 0.23, 0.23, 0.25, 0.40, 0.80, 0.70, 0.35, 0.28, 0.27,
        0.28, 0.28, 0.27, 0.28, 0.30, 0.55, 1.00, 1.25, 1.15, 0.95, 0.70,
        0.45, 0.30,
    ],
    "home_business": [
        0.45, 0.42, 0.40, 0.40, 0.42, 0.55, 0.85, 1.05, 1.20, 1.25, 1.28,
        1.25, 1.20, 1.18, 1.15, 1.10, 1.05, 1.10, 1.15, 1.05, 0.90, 0.75,
        0.60, 0.50,
    ],
}

#: (name, heating gradient kWh/degC, cooling gradient kWh/degC, weight).
_THERMAL_ARCHETYPES: list[tuple[str, float, float, float]] = [
    ("gas_heat_no_ac", 0.010, 0.008, 0.20),
    ("gas_heat_ac", 0.015, 0.065, 0.35),
    ("electric_heat_ac", 0.110, 0.055, 0.25),
    ("electric_heat_heavy_ac", 0.140, 0.110, 0.10),
    ("baseboard_no_ac", 0.090, 0.006, 0.10),
]


@dataclass(frozen=True)
class SeedConfig:
    """Parameters of the synthetic seed data set."""

    n_consumers: int = 100
    n_hours: int = HOURS_PER_YEAR
    #: Balance temperature below which heating load grows (deg C).
    heating_setpoint_c: float = 15.0
    #: Balance temperature above which cooling load grows (deg C).
    cooling_setpoint_c: float = 20.0
    #: Std of the per-consumer multiplicative scale on the activity profile.
    scale_sigma: float = 0.25
    #: Std of multiplicative hour-to-hour activity noise.
    activity_noise_sigma: float = 0.15
    #: Std of additive measurement noise (kWh).
    measurement_noise_sigma: float = 0.03
    #: Weekend multiplier applied to the activity profile.
    weekend_factor: float = 1.12
    #: Minimum standby load (kWh) — consumption never drops below this.
    standby_load: float = 0.04
    weather: WeatherConfig = field(default_factory=WeatherConfig)
    seed: int = 42


def archetype_names() -> list[str]:
    """Names of the built-in daily activity archetypes."""
    return list(_ARCHETYPES)


def quantize_readings(
    dataset: Dataset,
    consumption_decimals: int = 3,
    temperature_decimals: int = 1,
) -> Dataset:
    """Round a dataset to fixed meter precision, as real meters report.

    The raw synthesizer emits full-precision float64, but actual smart
    meters report kWh at a fixed decimal resolution (the paper's utility
    data: 3 decimals) and weather feeds report tenths of a degree.  The
    storage benchmarks quantize through this helper so the on-disk data
    has the statistical shape of real exports — which is what lets the v2
    store's decimal-scaling float codec hit its integer fast path.

    Rounding uses exactly the codec's ``rint(v * 10^d) / 10^d`` expression
    so the quantized values are bit-stable under re-quantization.  Adding
    ``+ 0.0`` canonicalizes ``-0.0`` to ``+0.0`` (a no-op on every other
    value): real exports print zeros unsigned, and a single ``-0.0``
    would otherwise push its whole partition off the codec's integer
    fast path.
    """

    def q(values: np.ndarray, decimals: int) -> np.ndarray:
        scale = 10.0**decimals
        return np.rint(values * scale) / scale + 0.0

    return Dataset(
        consumer_ids=list(dataset.consumer_ids),
        consumption=q(dataset.consumption, consumption_decimals),
        temperature=q(dataset.temperature, temperature_decimals),
        name=dataset.name,
    )


def _pick_thermal(rng: np.random.Generator) -> tuple[float, float]:
    weights = np.array([w for *_, w in _THERMAL_ARCHETYPES])
    idx = rng.choice(len(_THERMAL_ARCHETYPES), p=weights / weights.sum())
    _, heat_g, cool_g, _ = _THERMAL_ARCHETYPES[idx]
    # Individual spread around the archetype gradients.
    heat_g *= rng.lognormal(0.0, 0.25)
    cool_g *= rng.lognormal(0.0, 0.25)
    return heat_g, cool_g


def make_seed_dataset(
    config: SeedConfig | None = None,
    temperature: np.ndarray | None = None,
    name: str = "seed",
) -> Dataset:
    """Create the synthetic seed :class:`~repro.timeseries.series.Dataset`.

    All consumers share one regional ``temperature`` series (as in the
    paper); pass one explicitly to reuse a series across data sets, or let
    the function derive it from ``config.weather``.
    """
    cfg = config or SeedConfig()
    if cfg.n_consumers < 1:
        raise ValueError("n_consumers must be >= 1")
    if cfg.n_hours % HOURS_PER_DAY != 0:
        raise ValueError("n_hours must be a whole number of days")
    rng = np.random.default_rng(cfg.seed)
    if temperature is None:
        temperature = make_temperature_series(
            cfg.n_hours, cfg.weather, seed=cfg.seed + 1
        )
    temperature = np.asarray(temperature, dtype=np.float64)
    if temperature.shape != (cfg.n_hours,):
        raise ValueError(
            f"temperature must have shape ({cfg.n_hours},), got {temperature.shape}"
        )

    hours = np.arange(cfg.n_hours) % HOURS_PER_DAY
    days = np.arange(cfg.n_hours) // HOURS_PER_DAY
    is_weekend = (days % 7) >= 5
    heating_dd = np.maximum(0.0, cfg.heating_setpoint_c - temperature)
    cooling_dd = np.maximum(0.0, temperature - cfg.cooling_setpoint_c)

    archetypes = list(_ARCHETYPES.values())
    consumption = np.empty((cfg.n_consumers, cfg.n_hours))
    ids = [f"h{idx:06d}" for idx in range(cfg.n_consumers)]

    for i in range(cfg.n_consumers):
        base_profile = np.array(archetypes[rng.integers(len(archetypes))])
        scale = rng.lognormal(0.0, cfg.scale_sigma)
        # Smooth per-consumer perturbation of the archetype shape.
        shape_noise = rng.normal(0.0, 0.08, HOURS_PER_DAY)
        profile = np.maximum(0.05, base_profile * scale * (1 + shape_noise))

        heat_g, cool_g = _pick_thermal(rng)

        activity = profile[hours]
        activity = activity * np.where(is_weekend, cfg.weekend_factor, 1.0)
        activity = activity * rng.lognormal(
            0.0, cfg.activity_noise_sigma, cfg.n_hours
        )
        thermal = heat_g * heating_dd + cool_g * cooling_dd
        noise = rng.normal(0.0, cfg.measurement_noise_sigma, cfg.n_hours)
        consumption[i] = np.maximum(cfg.standby_load, activity + thermal + noise)

    return Dataset(
        consumer_ids=ids,
        consumption=consumption,
        temperature=np.broadcast_to(temperature, consumption.shape).copy(),
        name=name,
    )
