"""Uploading benchmark datasets into the simulated DFS.

Shared by the Spark and Hive engines: materializes a dataset in one of the
three Section 5.4.2 formats and returns the DFS paths.
"""

from __future__ import annotations

from repro.cluster.dfs import SimDFS
from repro.io.formats import (
    ClusterFormat,
    encode_household_lines,
    encode_reading_lines,
    group_households,
)
from repro.timeseries.series import Dataset


def write_dataset_to_dfs(
    dfs: SimDFS,
    dataset: Dataset,
    fmt: ClusterFormat,
    prefix: str = "/data",
    n_files: int = 1,
) -> list[str]:
    """Write ``dataset`` under ``prefix`` in the requested format.

    Format 3 writes ``n_files`` non-splittable files, each holding whole
    households (round-robin assignment); the other formats write one
    splittable file.
    """
    if fmt is ClusterFormat.READING_PER_LINE:
        path = f"{prefix}/readings.txt"
        dfs.write_lines(path, encode_reading_lines(dataset))
        return [path]
    if fmt is ClusterFormat.HOUSEHOLD_PER_LINE:
        path = f"{prefix}/households.txt"
        dfs.write_lines(path, encode_household_lines(dataset))
        return [path]
    groups = group_households(dataset, n_files)
    paths: list[str] = []
    for g, rows in enumerate(groups):
        path = f"{prefix}/part-{g:05d}.txt"
        lines: list[str] = []
        for i in rows:
            cons = dataset.consumption[i]
            temp = dataset.temperature[i]
            cid = dataset.consumer_ids[i]
            lines.extend(
                f"{cid},{t},{cons[t]:.6f},{temp[t]:.4f}"
                for t in range(dataset.n_hours)
            )
        dfs.write_lines(path, lines, splittable=False)
        paths.append(path)
    return paths
