"""Simulated distributed filesystem (HDFS analogue).

Files are sequences of text lines held in memory, chopped into blocks of
roughly ``block_size`` bytes at line boundaries, each block replicated on
``replication`` distinct workers chosen round-robin with a random rotation
(like HDFS's default placement ignoring racks).  Files can be marked
non-splittable, reproducing the paper's overridden ``isSplitable()`` for
the third data format: such a file is always one input split regardless of
its block count.

Simplification vs real HDFS, documented: blocks split at line boundaries
instead of byte offsets (real Hadoop record readers resolve the boundary-
crossing line; modelling that adds bytes but no behaviour the benchmark
observes).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.cluster.topology import ClusterSpec
from repro.exceptions import DfsError

#: Default block size in bytes.  Real HDFS uses 64-128 MB; the simulation
#: scales everything down consistently (see the cost model).
DEFAULT_BLOCK_SIZE = 256 * 1024


@dataclass(frozen=True)
class BlockInfo:
    """Metadata of one block: where it lives and how big it is."""

    index: int
    n_bytes: int
    n_lines: int
    nodes: tuple[int, ...]


@dataclass
class _File:
    lines: list[str]
    blocks: list[BlockInfo]
    block_line_ranges: list[tuple[int, int]]
    splittable: bool
    n_bytes: int


class SimDFS:
    """An in-memory DFS with block placement and locality metadata."""

    def __init__(
        self,
        spec: ClusterSpec,
        block_size: int = DEFAULT_BLOCK_SIZE,
        replication: int = 3,
        seed: int = 0,
    ) -> None:
        if block_size < 1:
            raise ValueError("block_size must be >= 1")
        if replication < 1:
            raise ValueError("replication must be >= 1")
        self.spec = spec
        self.block_size = block_size
        self.replication = min(replication, spec.n_workers)
        self._files: dict[str, _File] = {}
        self._rng = np.random.default_rng(seed)
        self._next_node = int(self._rng.integers(spec.n_workers))
        self._dead_nodes: set[int] = set()

    # Writes ---------------------------------------------------------------

    def write_lines(
        self, path: str, lines, splittable: bool = True
    ) -> None:
        """Create a file from an iterable of text lines."""
        if path in self._files:
            raise DfsError(f"file {path!r} already exists")
        lines = list(lines)
        blocks: list[BlockInfo] = []
        ranges: list[tuple[int, int]] = []
        start = 0
        current_bytes = 0
        total_bytes = 0
        for i, line in enumerate(lines):
            line_bytes = len(line) + 1  # newline
            total_bytes += line_bytes
            current_bytes += line_bytes
            if current_bytes >= self.block_size:
                blocks.append(self._make_block(len(blocks), current_bytes, i + 1 - start))
                ranges.append((start, i + 1))
                start = i + 1
                current_bytes = 0
        if start < len(lines) or not blocks:
            blocks.append(
                self._make_block(len(blocks), current_bytes, len(lines) - start)
            )
            ranges.append((start, len(lines)))
        self._files[path] = _File(
            lines=lines,
            blocks=blocks,
            block_line_ranges=ranges,
            splittable=splittable,
            n_bytes=total_bytes,
        )

    def _make_block(self, index: int, n_bytes: int, n_lines: int) -> BlockInfo:
        live = [
            n for n in range(self.spec.n_workers) if n not in self._dead_nodes
        ]
        if not live:
            raise DfsError("no live datanodes")
        replicas = min(self.replication, len(live))
        start = self._next_node % len(live)
        nodes = tuple(live[(start + r) % len(live)] for r in range(replicas))
        self._next_node = (self._next_node + 1) % self.spec.n_workers
        return BlockInfo(index=index, n_bytes=n_bytes, n_lines=n_lines, nodes=nodes)

    def delete(self, path: str) -> None:
        """Remove a file."""
        if path not in self._files:
            raise DfsError(f"no file {path!r}")
        del self._files[path]

    # Reads ------------------------------------------------------------------

    def _file(self, path: str) -> _File:
        try:
            return self._files[path]
        except KeyError:
            raise DfsError(
                f"no file {path!r}; available: {sorted(self._files)[:10]}"
            ) from None

    def exists(self, path: str) -> bool:
        """True if the file exists."""
        return path in self._files

    def ls(self, prefix: str = "") -> list[str]:
        """File paths starting with ``prefix``."""
        return sorted(p for p in self._files if p.startswith(prefix))

    def file_bytes(self, path: str) -> int:
        """Total size of a file in bytes."""
        return self._file(path).n_bytes

    def file_blocks(self, path: str) -> list[BlockInfo]:
        """Block metadata of a file."""
        return list(self._file(path).blocks)

    def is_splittable(self, path: str) -> bool:
        """Whether input splits may be per-block (False = whole file)."""
        return self._file(path).splittable

    def read_block(self, path: str, index: int) -> list[str]:
        """Lines of one block."""
        file = self._file(path)
        if not 0 <= index < len(file.blocks):
            raise DfsError(
                f"{path}: block {index} out of range 0..{len(file.blocks) - 1}"
            )
        start, end = file.block_line_ranges[index]
        return file.lines[start:end]

    def read_file(self, path: str) -> list[str]:
        """All lines of a file."""
        return list(self._file(path).lines)

    def total_bytes(self) -> int:
        """Sum of all file sizes."""
        return sum(f.n_bytes for f in self._files.values())

    # Fault tolerance --------------------------------------------------------

    @property
    def dead_nodes(self) -> frozenset[int]:
        """Workers currently marked dead."""
        return frozenset(self._dead_nodes)

    def fail_node(self, node: int) -> int:
        """Kill a datanode and re-replicate its blocks (HDFS recovery).

        Every block that held a replica on ``node`` gets a fresh replica
        on a live node not already holding one (when capacity allows).
        Returns the number of blocks re-replicated.  Data is never lost in
        the simulation: block contents live in the namenode-side line
        store, so recovery is always possible while any node is alive.
        """
        if not 0 <= node < self.spec.n_workers:
            raise DfsError(f"no such node: {node}")
        if node in self._dead_nodes:
            raise DfsError(f"node {node} is already dead")
        self._dead_nodes.add(node)
        live = [
            n for n in range(self.spec.n_workers) if n not in self._dead_nodes
        ]
        if not live:
            self._dead_nodes.discard(node)
            raise DfsError("cannot fail the last live datanode")
        moved = 0
        for file in self._files.values():
            for i, block in enumerate(file.blocks):
                if node not in block.nodes:
                    continue
                survivors = [n for n in block.nodes if n != node]
                candidates = [n for n in live if n not in survivors]
                if candidates:
                    target = candidates[
                        int(self._rng.integers(len(candidates)))
                    ]
                    survivors.append(target)
                file.blocks[i] = BlockInfo(
                    index=block.index,
                    n_bytes=block.n_bytes,
                    n_lines=block.n_lines,
                    nodes=tuple(survivors),
                )
                moved += 1
        return moved

    def revive_node(self, node: int) -> None:
        """Bring a dead datanode back (no blocks are moved onto it)."""
        if node not in self._dead_nodes:
            raise DfsError(f"node {node} is not dead")
        self._dead_nodes.discard(node)


@dataclass(frozen=True)
class InputSplit:
    """One unit of map-task input: a block, or a whole non-splittable file."""

    path: str
    block_index: int | None  # None = whole file
    n_bytes: int
    n_lines: int
    preferred_nodes: tuple[int, ...]

    def read(self, dfs: SimDFS) -> list[str]:
        """Materialize the split's lines."""
        if self.block_index is None:
            return dfs.read_file(self.path)
        return dfs.read_block(self.path, self.block_index)


def input_splits(dfs: SimDFS, paths: list[str]) -> list[InputSplit]:
    """Compute the input splits for a set of files, honoring splittability."""
    splits: list[InputSplit] = []
    for path in paths:
        blocks = dfs.file_blocks(path)
        if dfs.is_splittable(path):
            for block in blocks:
                splits.append(
                    InputSplit(
                        path=path,
                        block_index=block.index,
                        n_bytes=block.n_bytes,
                        n_lines=block.n_lines,
                        preferred_nodes=block.nodes,
                    )
                )
        else:
            splits.append(
                InputSplit(
                    path=path,
                    block_index=None,
                    n_bytes=dfs.file_bytes(path),
                    n_lines=sum(b.n_lines for b in blocks),
                    # A whole-file split prefers the node holding its first
                    # block (the rest stream over the network).
                    preferred_nodes=blocks[0].nodes if blocks else (),
                )
            )
    return splits
