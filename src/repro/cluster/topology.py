"""Cluster topology description.

Defaults mirror the paper's testbed: one admin node (not modeled — it only
submits jobs) plus 16 workers, each a dual-socket 12-core Xeon with 60 GB
RAM on gigabit Ethernet.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class ClusterSpec:
    """Static description of the simulated cluster."""

    n_workers: int = 16
    cores_per_worker: int = 12
    memory_gb_per_worker: float = 60.0

    def __post_init__(self) -> None:
        if self.n_workers < 1:
            raise ValueError(f"n_workers must be >= 1, got {self.n_workers}")
        if self.cores_per_worker < 1:
            raise ValueError(
                f"cores_per_worker must be >= 1, got {self.cores_per_worker}"
            )
        if self.memory_gb_per_worker <= 0:
            raise ValueError("memory_gb_per_worker must be positive")

    @property
    def total_slots(self) -> int:
        """Concurrent task slots across the cluster (paper: 12 per node)."""
        return self.n_workers * self.cores_per_worker

    def with_workers(self, n_workers: int) -> "ClusterSpec":
        """A copy with a different worker count (speedup sweeps)."""
        return ClusterSpec(
            n_workers=n_workers,
            cores_per_worker=self.cores_per_worker,
            memory_gb_per_worker=self.memory_gb_per_worker,
        )
