"""Simulated cluster substrate: DFS, cost model, MapReduce runner.

The paper's cluster experiments (Sections 5.4) run Spark and Hive on a
16-worker Hadoop cluster.  Without hardware, we split the problem:

* **correctness is real** — MapReduce jobs execute their mappers,
  combiners and reducers in-process over the simulated DFS's actual bytes,
  and their answers are validated against the single-node engines;
* **time is modeled** — a :class:`~repro.cluster.costmodel.CostModel`
  combines each task's *measured* compute time with explicit I/O, shuffle,
  startup and locality terms, and a wave scheduler turns per-task durations
  into a cluster makespan.  Scaling *shapes* (speedup curves, map-only vs
  map+reduce formats) emerge from the model's structure, not from wall
  clocks we cannot reproduce.
"""

from repro.cluster.costmodel import CostModel
from repro.cluster.dfs import SimDFS
from repro.cluster.job import JobRunner, MapReduceJob
from repro.cluster.topology import ClusterSpec

__all__ = ["ClusterSpec", "CostModel", "JobRunner", "MapReduceJob", "SimDFS"]
