"""Analytic cost model for simulated cluster time.

Each task's duration combines the *measured* compute seconds of actually
running its user code in-process with modeled terms::

    map_task    = startup + bytes_in / (local ? disk_bw : net_bw)
                  + measured_compute * compute_scale
    reduce_task = startup + shuffle_in / net_bw + sort_cost(records)
                  + measured_compute * compute_scale

and a wave scheduler (``schedule``) assigns tasks to worker slots with
locality preference to produce the phase makespan.

Why a model at all: the repository runs on one machine, so wall-clock time
cannot exhibit cluster behaviour.  The model's structure — barriers between
map and reduce, shuffle proportional to intermediate bytes, startup per
task, limited slots per node — is what produces the paper's observed
shapes (map-only formats beat shuffling formats, speedup saturates as task
granularity coarsens, Hive's extra per-job overhead).  Every constant is a
dataclass field, and ablation benches perturb them to show which terms
matter.

Bandwidths are expressed against the simulation's actual bytes.  The
defaults are calibrated (see EXPERIMENTS.md) so that I/O and Python-kernel
compute are in realistic proportion; ``compute_scale`` compensates for the
interpreter being slower per record than the JVM implementations the paper
ran.
"""

from __future__ import annotations

import heapq
import threading
from dataclasses import dataclass, field, replace

from repro.cluster.topology import ClusterSpec


@dataclass(frozen=True)
class CostModel:
    """Tunable constants of the virtual-time model."""

    #: Local disk scan bandwidth (bytes/sec of simulation bytes).
    disk_bytes_per_s: float = 4_000_000.0
    #: Cross-node network bandwidth (bytes/sec of simulation bytes).
    net_bytes_per_s: float = 1_000_000.0
    #: Fixed cost to launch one task (scheduling, JVM reuse, ...).
    task_startup_s: float = 0.05
    #: Fixed cost to launch a job/stage (paper: MR job start is expensive).
    job_startup_s: float = 1.0
    #: Sort/merge cost per shuffled record on the reduce side.
    sort_s_per_record: float = 2.0e-7
    #: Scale on measured in-process compute seconds (Python -> JVM parity).
    compute_scale: float = 0.25
    #: Extra read penalty multiplier when a task runs off-node.
    remote_read_penalty: float = 1.0  # remote reads use net_bytes_per_s
    #: Serial driver-side cost per input split (job setup, file listing,
    #: task serialization).  This is the term that makes Spark degrade as
    #: the file count grows in the paper's Figure 18 while Hive, which
    #: combines small inputs, stays flat.
    driver_per_split_s: float = 0.0

    def map_duration(
        self, bytes_in: int, compute_s: float, local: bool
    ) -> float:
        """Virtual duration of one map task."""
        bw = self.disk_bytes_per_s if local else self.net_bytes_per_s
        return (
            self.task_startup_s
            + bytes_in / bw * (1.0 if local else self.remote_read_penalty)
            + compute_s * self.compute_scale
        )

    def reduce_duration(
        self, shuffle_bytes_in: int, shuffle_records: int, compute_s: float
    ) -> float:
        """Virtual duration of one reduce task."""
        return (
            self.task_startup_s
            + shuffle_bytes_in / self.net_bytes_per_s
            + shuffle_records * self.sort_s_per_record
            + compute_s * self.compute_scale
        )

    def with_overrides(self, **kwargs) -> "CostModel":
        """A copy with some constants replaced (ablation benches)."""
        return replace(self, **kwargs)


@dataclass
class ScheduledTask:
    """Outcome of scheduling one task."""

    task_index: int
    node: int
    start_s: float
    end_s: float
    local: bool


@dataclass
class PhaseSchedule:
    """A scheduled phase: per-task placement plus the makespan."""

    tasks: list[ScheduledTask] = field(default_factory=list)
    makespan_s: float = 0.0
    locality_fraction: float = 0.0


def schedule(
    spec: ClusterSpec,
    durations_local: list[float],
    durations_remote: list[float],
    preferred_nodes: list[tuple[int, ...]],
) -> PhaseSchedule:
    """Greedy locality-aware list scheduling onto worker slots.

    For each task (longest first, a standard LPT heuristic) we consider
    starting it on each worker at that worker's earliest free slot, taking
    the local duration on preferred nodes and the remote duration
    elsewhere, and place it where it *finishes* earliest.  Returns the
    resulting makespan and placements.
    """
    n_tasks = len(durations_local)
    if not n_tasks:
        return PhaseSchedule()
    order = sorted(
        range(n_tasks), key=lambda i: durations_local[i], reverse=True
    )
    # Per node: heap of slot free times.
    slots: list[list[float]] = [
        [0.0] * spec.cores_per_worker for _ in range(spec.n_workers)
    ]
    for node_slots in slots:
        heapq.heapify(node_slots)

    scheduled: list[ScheduledTask | None] = [None] * n_tasks
    n_local = 0
    for i in order:
        preferred = set(preferred_nodes[i]) if preferred_nodes[i] else set()
        best: tuple[float, float, int, bool] | None = None  # (end, start, node, local)
        for node in range(spec.n_workers):
            free = slots[node][0]
            local = node in preferred if preferred else True
            duration = durations_local[i] if local else durations_remote[i]
            end = free + duration
            if best is None or end < best[0] - 1e-12:
                best = (end, free, node, local)
        assert best is not None
        end, start, node, local = best
        heapq.heapreplace(slots[node], end)
        scheduled[i] = ScheduledTask(
            task_index=i, node=node, start_s=start, end_s=end, local=local
        )
        n_local += int(local)

    tasks = [t for t in scheduled if t is not None]
    return PhaseSchedule(
        tasks=tasks,
        makespan_s=max(t.end_s for t in tasks),
        locality_fraction=n_local / n_tasks,
    )


# Measured dispatch cost model ----------------------------------------------
#
# Unlike the virtual-time CostModel above, these two classes price *real*
# process-pool dispatch on this machine: the warm pool measures its no-op
# round-trip (repro.parallel.warmpool), serial runs record per-item kernel
# compute, and the executor asks chunk_count() how many chunks — if any —
# are worth dispatching.  This is what stops a 20 ms batched kernel from
# being fanned out over a pool whose per-chunk overhead costs more than
# the compute it parallelizes (the "batched_parallel slower than batched"
# regression in BENCH_kernels.json).


@dataclass(frozen=True)
class DispatchCostModel:
    """Chunk sizing from a measured per-dispatch overhead.

    ``dispatch_overhead_s`` is the warm pool's no-op round-trip (submit,
    pickle, schedule, return).  A chunk is only worth dispatching when
    its compute share covers that overhead ``min_compute_per_dispatch``
    times over — below that, fan-out time is dominated by marshalling
    and the serial in-process run wins.
    """

    dispatch_overhead_s: float
    #: Require each chunk's compute to be at least this multiple of the
    #: dispatch overhead.  2x keeps overhead under ~1/3 of chunk wall
    #: time while still letting ~10 ms kernels split across two workers.
    min_compute_per_dispatch: float = 2.0

    def chunk_count(
        self,
        n_items: int,
        n_workers: int,
        est_total_compute_s: float | None,
    ) -> int:
        """How many chunks to dispatch; below 2, run serially in-process.

        With no compute estimate the model abstains and returns
        ``n_workers`` (the pre-cost-model behaviour).
        """
        if n_items <= 0:
            return 0
        if est_total_compute_s is None:
            return min(n_workers, n_items)
        overhead = max(self.dispatch_overhead_s, 1e-6)
        affordable = int(
            est_total_compute_s / (self.min_compute_per_dispatch * overhead)
        )
        return max(0, min(n_workers, n_items, affordable))


class KernelCostTracker:
    """EWMA per-item compute estimates from measured serial runs.

    The executor's serial paths call :meth:`observe` with wall-clock
    seconds and item counts; pooled paths call :meth:`estimate_s_per_item`
    to feed :class:`DispatchCostModel`.  The first pooled call for a
    label may find no estimate yet — the model then abstains, and the
    benchmark harness (which always measures serial before parallel)
    naturally primes it.
    """

    def __init__(self, alpha: float = 0.5) -> None:
        if not 0.0 < alpha <= 1.0:
            raise ValueError(f"alpha must be in (0, 1], got {alpha}")
        self._alpha = alpha
        self._lock = threading.Lock()
        self._estimates: dict[str, float] = {}

    def observe(self, label: str, seconds: float, n_items: int) -> None:
        """Record one measured serial run of ``n_items`` items."""
        if n_items <= 0 or seconds < 0.0:
            return
        per_item = seconds / n_items
        with self._lock:
            previous = self._estimates.get(label)
            if previous is None:
                self._estimates[label] = per_item
            else:
                self._estimates[label] = (
                    self._alpha * per_item + (1.0 - self._alpha) * previous
                )

    def estimate_s_per_item(self, label: str) -> float | None:
        """Current estimate for a label, or None before any observation."""
        with self._lock:
            return self._estimates.get(label)

    def reset(self) -> None:
        """Forget all estimates (tests)."""
        with self._lock:
            self._estimates.clear()


_kernel_cost_tracker = KernelCostTracker()


def get_kernel_cost_tracker() -> KernelCostTracker:
    """The process-wide kernel cost tracker singleton."""
    return _kernel_cost_tracker
