"""MapReduce execution over the simulated DFS.

Jobs run for real: each input split's lines are fed to the mapper, map
outputs are (optionally) combined, hash-partitioned, shuffled, grouped by
key and reduced — all in-process, producing actual results.  Alongside,
every task's measured compute time and byte counts feed the
:class:`~repro.cluster.costmodel.CostModel` and wave scheduler, producing
the job's *simulated* cluster seconds.

The mapper receives a whole split (a list of lines) rather than one line,
which is both faster in Python and lets map-side aggregation (combining
inside the mapper, as Hive UDTFs do) be expressed naturally.
"""

from __future__ import annotations

import time
import zlib
from dataclasses import dataclass
from typing import Callable, Iterable

import numpy as np

from repro.cluster.costmodel import CostModel, PhaseSchedule, schedule
from repro.cluster.dfs import InputSplit, SimDFS, input_splits
from repro.cluster.topology import ClusterSpec
from repro.exceptions import JobError
from repro.resilience.backoff import AttemptAccount

#: A mapper consumes one split's lines and yields (key, value) pairs.
Mapper = Callable[[list[str]], Iterable[tuple]]
#: A reducer/combiner consumes (key, values) and yields (key, value) pairs.
Reducer = Callable[[object, list], Iterable[tuple]]


def stable_hash(key) -> int:
    """Deterministic partitioning hash (Python's str hash is randomized)."""
    return zlib.crc32(repr(key).encode("utf-8"))


def estimate_bytes(obj) -> int:
    """Rough serialized size of a key or value, for shuffle accounting."""
    if isinstance(obj, str):
        return len(obj)
    if isinstance(obj, bytes):
        return len(obj)
    if isinstance(obj, (int, float, np.integer, np.floating)):
        return 8
    if isinstance(obj, np.ndarray):
        return int(obj.nbytes)
    if isinstance(obj, (tuple, list)):
        return 8 + sum(estimate_bytes(v) for v in obj)
    if isinstance(obj, dict):
        return 16 + sum(
            estimate_bytes(k) + estimate_bytes(v) for k, v in obj.items()
        )
    return 32


@dataclass(frozen=True)
class FailureInjector:
    """Simulated task failures with retry (fault-tolerance testing).

    Each task *attempt* fails independently with ``failure_probability``
    (deterministic given ``seed``).  A failed attempt wastes
    ``wasted_fraction`` of the task's duration in virtual time, then the
    task is retried — MapReduce's actual recovery story — re-executing the
    user code for real, which doubles as a determinism check.  A task that
    fails ``max_attempts`` times kills the job, as Hadoop does.
    """

    failure_probability: float
    seed: int = 0
    max_attempts: int = 4
    wasted_fraction: float = 0.5

    def __post_init__(self) -> None:
        if not 0.0 <= self.failure_probability < 1.0:
            raise ValueError("failure_probability must be in [0, 1)")
        if self.max_attempts < 1:
            raise ValueError("max_attempts must be >= 1")

    def new_account(self) -> AttemptAccount:
        """A fresh attempt account with this injector's budget.

        Shared with the real supervised pool
        (:mod:`repro.resilience.supervisor`) so simulated and real fault
        tolerance count attempts the same way.
        """
        return AttemptAccount(max_attempts=self.max_attempts)


@dataclass(frozen=True)
class MapReduceJob:
    """A job definition.  ``reducer=None`` makes it map-only."""

    name: str
    mapper: Mapper
    reducer: Reducer | None = None
    combiner: Reducer | None = None
    n_reducers: int = 8

    def __post_init__(self) -> None:
        if self.n_reducers < 1:
            raise ValueError("n_reducers must be >= 1")
        if self.combiner is not None and self.reducer is None:
            raise ValueError("a combiner without a reducer makes no sense")


@dataclass
class JobCounters:
    """Hadoop-style counters, filled during execution."""

    map_input_records: int = 0
    map_input_bytes: int = 0
    map_output_records: int = 0
    map_output_bytes: int = 0
    combine_output_records: int = 0
    shuffle_bytes: int = 0
    reduce_input_groups: int = 0
    reduce_output_records: int = 0
    failed_task_attempts: int = 0


@dataclass
class JobReport:
    """Everything measured and modeled about one job run."""

    name: str
    n_map_tasks: int
    n_reduce_tasks: int
    counters: JobCounters
    map_phase: PhaseSchedule
    reduce_phase: PhaseSchedule | None
    measured_map_compute_s: float
    measured_reduce_compute_s: float
    sim_seconds: float
    #: Modeled peak per-worker memory for the shuffle (bytes).
    peak_shuffle_bytes_per_worker: int = 0


class JobRunner:
    """Executes MapReduce jobs against one DFS + cluster + cost model."""

    def __init__(
        self,
        dfs: SimDFS,
        cost_model: CostModel | None = None,
        spec: ClusterSpec | None = None,
        failure_injector: FailureInjector | None = None,
    ) -> None:
        self.dfs = dfs
        self.cost_model = cost_model or CostModel()
        self.spec = spec or dfs.spec
        self.failure_injector = failure_injector
        self._failure_rng = (
            np.random.default_rng(failure_injector.seed)
            if failure_injector is not None
            else None
        )

    def _run_with_retries(self, job_name: str, task_label: str, attempt_fn):
        """Execute a task body under the failure injector.

        Returns ``(result, account)`` — the shared
        :class:`~repro.resilience.backoff.AttemptAccount` records the
        wasted attempts, exactly as the real supervised pool counts them.
        """
        injector = self.failure_injector
        if injector is None:
            return attempt_fn(), AttemptAccount(max_attempts=1)
        account = injector.new_account()
        while True:
            if self._failure_rng.random() < injector.failure_probability:
                account.fail()
                if account.exhausted:
                    raise JobError(
                        f"job {job_name!r}: {task_label} failed "
                        f"{account.failures} attempts; giving up"
                    )
                continue
            result = attempt_fn()
            return result, account

    def run(
        self, job: MapReduceJob, paths: list[str]
    ) -> tuple[list[tuple], JobReport]:
        """Run a job over DFS files; returns (results, report)."""
        splits = input_splits(self.dfs, paths)
        if not splits:
            raise JobError(f"job {job.name!r}: no input splits for {paths}")
        counters = JobCounters()

        map_outputs, map_computes, retry_mult = self._run_map_tasks(
            job, splits, counters
        )

        map_local = [
            self.cost_model.map_duration(s.n_bytes, c, local=True) * m
            for s, c, m in zip(splits, map_computes, retry_mult)
        ]
        map_remote = [
            self.cost_model.map_duration(s.n_bytes, c, local=False) * m
            for s, c, m in zip(splits, map_computes, retry_mult)
        ]
        map_phase = schedule(
            self.spec, map_local, map_remote, [s.preferred_nodes for s in splits]
        )

        if job.reducer is None:
            results = [kv for out in map_outputs for kv in out]
            counters.reduce_output_records = len(results)
            report = JobReport(
                name=job.name,
                n_map_tasks=len(splits),
                n_reduce_tasks=0,
                counters=counters,
                map_phase=map_phase,
                reduce_phase=None,
                measured_map_compute_s=sum(map_computes),
                measured_reduce_compute_s=0.0,
                sim_seconds=(
                    self.cost_model.job_startup_s
                    + self.cost_model.driver_per_split_s * len(splits)
                    + map_phase.makespan_s
                ),
            )
            return results, report

        results, reduce_phase, reduce_compute, peak_shuffle = self._run_reduce(
            job, map_outputs, counters
        )
        report = JobReport(
            name=job.name,
            n_map_tasks=len(splits),
            n_reduce_tasks=job.n_reducers,
            counters=counters,
            map_phase=map_phase,
            reduce_phase=reduce_phase,
            measured_map_compute_s=sum(map_computes),
            measured_reduce_compute_s=reduce_compute,
            sim_seconds=(
                self.cost_model.job_startup_s
                + self.cost_model.driver_per_split_s * len(splits)
                + map_phase.makespan_s
                + reduce_phase.makespan_s
            ),
            peak_shuffle_bytes_per_worker=peak_shuffle,
        )
        return results, report

    # Internals -----------------------------------------------------------

    def _run_map_tasks(self, job, splits: list[InputSplit], counters):
        outputs: list[list[tuple]] = []
        computes: list[float] = []
        multipliers: list[float] = []
        for split in splits:
            lines = split.read(self.dfs)
            counters.map_input_records += len(lines)
            counters.map_input_bytes += split.n_bytes

            def attempt():
                try:
                    out = list(job.mapper(lines))
                except Exception as exc:
                    raise JobError(
                        f"job {job.name!r}: mapper failed on split "
                        f"{split.path}:{split.block_index}: {exc}"
                    ) from exc
                if job.combiner is not None and out:
                    return out, self._combine(job, out)
                return out, out

            tic = time.perf_counter()
            (raw_out, out), account = self._run_with_retries(
                job.name, f"map task {split.path}:{split.block_index}", attempt
            )
            computes.append(time.perf_counter() - tic)
            counters.failed_task_attempts += account.failures
            mult = (
                account.retry_multiplier(self.failure_injector.wasted_fraction)
                if self.failure_injector is not None
                else 1.0
            )
            counters.map_output_records += len(raw_out)
            if job.combiner is not None:
                counters.combine_output_records += len(out)
            multipliers.append(mult)
            # Map-only jobs may emit arbitrary rows; only jobs with a
            # reducer require (key, value) pairs (enforced at shuffle time).
            counters.map_output_bytes += sum(estimate_bytes(o) for o in out)
            outputs.append(out)
        return outputs, computes, multipliers

    def _combine(self, job, pairs: list[tuple]) -> list[tuple]:
        grouped: dict = {}
        for key, value in pairs:
            grouped.setdefault(key, []).append(value)
        out: list[tuple] = []
        for key, values in grouped.items():
            out.extend(job.combiner(key, values))
        return out

    def _run_reduce(self, job, map_outputs, counters):
        # Shuffle: hash-partition every map output pair.
        partitions: list[dict] = [dict() for _ in range(job.n_reducers)]
        partition_bytes = [0] * job.n_reducers
        partition_records = [0] * job.n_reducers
        for out in map_outputs:
            for key, value in out:
                p = stable_hash(key) % job.n_reducers
                partitions[p].setdefault(key, []).append(value)
                partition_bytes[p] += estimate_bytes(key) + estimate_bytes(value)
                partition_records[p] += 1
        counters.shuffle_bytes = sum(partition_bytes)

        results: list[tuple] = []
        computes: list[float] = []
        for p, partition in enumerate(partitions):
            counters.reduce_input_groups += len(partition)
            tic = time.perf_counter()
            for key in sorted(partition, key=repr):
                try:
                    results.extend(job.reducer(key, partition[key]))
                except Exception as exc:
                    raise JobError(
                        f"job {job.name!r}: reducer failed on key {key!r}: {exc}"
                    ) from exc
            computes.append(time.perf_counter() - tic)
        counters.reduce_output_records = len(results)

        durations = [
            self.cost_model.reduce_duration(b, r, c)
            for b, r, c in zip(partition_bytes, partition_records, computes)
        ]
        reduce_phase = schedule(
            self.spec,
            durations,
            durations,  # reducers always pull over the network
            [() for _ in durations],
        )
        # Peak modeled shuffle memory per worker: reducers are spread across
        # workers, each buffering its partition.
        per_worker = max(
            1, (job.n_reducers + self.spec.n_workers - 1) // self.spec.n_workers
        )
        biggest = sorted(partition_bytes, reverse=True)[:per_worker]
        return results, reduce_phase, sum(computes), sum(biggest)
