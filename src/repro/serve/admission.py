"""Admission control: per-tenant token buckets + weighted fair queueing.

The service never buffers unboundedly.  Every request passes three gates
*before* it may wait for a worker:

1. **rate** — a per-tenant token bucket (``rate_per_s`` sustained,
   ``burst`` peak).  An empty bucket is an explicit ``rate_limited``
   rejection carrying ``retry_after_s``;
2. **depth** — each tenant owns one FIFO of at most ``queue_depth``
   waiting queries; a full queue is a ``queue_full`` rejection (the
   429 analogue — the client, not the server, holds the backlog);
3. **saturation** — when the *global* backlog reaches ``shed_threshold``
   the service is overloaded and new work is shed (``overloaded``),
   unless the degradation ladder can answer from stale cache.

Dequeue order is weighted fair queueing (virtual-time WFQ): tenant ``t``
with weight ``w_t`` is charged ``1 / w_t`` of virtual time per query, so
a tenant flooding its own queue cannot starve the others — each gets a
long-run share proportional to its weight, while an idle tenant's unused
share is redistributed automatically.
"""

from __future__ import annotations

import itertools
import time
from collections import deque
from dataclasses import dataclass, field
from typing import Any, Callable

from repro.exceptions import AdmissionError

#: Machine-readable rejection reasons (the wire `reason` field).
REASONS = ("rate_limited", "queue_full", "overloaded")


@dataclass
class AdmissionConfig:
    """Knobs of the admission gate."""

    #: Sustained per-tenant request rate (tokens per second).
    rate_per_s: float = 50.0
    #: Bucket capacity — the tolerated burst above the sustained rate.
    burst: float = 25.0
    #: Waiting queries one tenant may hold (bounded queue depth).
    queue_depth: int = 16
    #: Global backlog at which new work is shed (the degradation ladder
    #: may still answer shed queries from stale cache).
    shed_threshold: int = 64
    #: Per-tenant WFQ weights; tenants absent here get ``default_weight``.
    weights: dict[str, float] = field(default_factory=dict)
    default_weight: float = 1.0


class TokenBucket:
    """A token bucket with an injectable clock (tests freeze time)."""

    def __init__(
        self,
        rate_per_s: float,
        burst: float,
        clock: Callable[[], float] = time.monotonic,
    ) -> None:
        if rate_per_s <= 0 or burst <= 0:
            raise ValueError(
                f"rate_per_s and burst must be > 0, got "
                f"{rate_per_s}/{burst}"
            )
        self.rate_per_s = float(rate_per_s)
        self.burst = float(burst)
        self._clock = clock
        self._tokens = float(burst)
        self._stamp = clock()

    def _refill(self) -> None:
        now = self._clock()
        self._tokens = min(
            self.burst, self._tokens + (now - self._stamp) * self.rate_per_s
        )
        self._stamp = now

    def try_take(self, cost: float = 1.0) -> float | None:
        """Take ``cost`` tokens; ``None`` on success, else seconds until
        the bucket will hold them again (the 429 ``retry_after_s``)."""
        self._refill()
        if self._tokens >= cost:
            self._tokens -= cost
            return None
        return (cost - self._tokens) / self.rate_per_s

    @property
    def tokens(self) -> float:
        self._refill()
        return self._tokens


class _TenantLane:
    """One tenant's bounded FIFO plus its WFQ accounting."""

    def __init__(self, weight: float, bucket: TokenBucket) -> None:
        self.weight = weight
        self.bucket = bucket
        self.queue: deque[Any] = deque()
        #: Virtual finish time of the last query charged to this lane.
        self.finish_v = 0.0


class AdmissionController:
    """The three admission gates + the WFQ dispatcher, as plain state.

    Not thread-safe by itself: the service drives it from one event
    loop.  ``offer`` either enqueues (returning the new backlog) or
    raises :class:`AdmissionError` with the rejection reason;
    ``take`` pops the next query in weighted-fair order.
    """

    def __init__(
        self,
        config: AdmissionConfig | None = None,
        clock: Callable[[], float] = time.monotonic,
    ) -> None:
        self.config = config or AdmissionConfig()
        self._clock = clock
        self._lanes: dict[str, _TenantLane] = {}
        self._virtual = 0.0  # global WFQ virtual time
        self._backlog = 0
        self._seq = itertools.count()  # FIFO tie-break across lanes
        #: Rejections by reason, for /stats and the zero-silent-drop audit.
        self.rejections: dict[str, int] = {r: 0 for r in REASONS}
        self.admitted = 0

    def _lane(self, tenant: str) -> _TenantLane:
        lane = self._lanes.get(tenant)
        if lane is None:
            weight = self.config.weights.get(
                tenant, self.config.default_weight
            )
            lane = _TenantLane(
                weight,
                TokenBucket(
                    self.config.rate_per_s, self.config.burst, self._clock
                ),
            )
            self._lanes[tenant] = lane
        return lane

    @property
    def backlog(self) -> int:
        """Queries admitted and still waiting for a worker."""
        return self._backlog

    @property
    def saturated(self) -> bool:
        """True once the global backlog has hit the shed threshold."""
        return self._backlog >= self.config.shed_threshold

    def offer(self, tenant: str, item: Any) -> None:
        """Admit ``item`` for ``tenant`` or raise :class:`AdmissionError`."""
        lane = self._lane(tenant)
        retry_after = lane.bucket.try_take()
        if retry_after is not None:
            self.rejections["rate_limited"] += 1
            raise AdmissionError(
                "rate_limited",
                f"tenant {tenant!r} exceeded {self.config.rate_per_s}/s "
                f"(burst {self.config.burst})",
                retry_after_s=retry_after,
            )
        if self.saturated:
            self.rejections["overloaded"] += 1
            raise AdmissionError(
                "overloaded",
                f"service backlog {self._backlog} at shed threshold "
                f"{self.config.shed_threshold}",
                retry_after_s=1.0 / self.config.rate_per_s,
            )
        if len(lane.queue) >= self.config.queue_depth:
            self.rejections["queue_full"] += 1
            raise AdmissionError(
                "queue_full",
                f"tenant {tenant!r} already has {len(lane.queue)} queries "
                f"waiting (depth {self.config.queue_depth})",
                retry_after_s=1.0 / self.config.rate_per_s,
            )
        # WFQ charge: one query costs 1/weight of virtual time, appended
        # after the lane's previous backlog (or now, if it was idle).
        lane.finish_v = max(lane.finish_v, self._virtual) + 1.0 / lane.weight
        lane.queue.append((lane.finish_v, next(self._seq), item))
        self._backlog += 1
        self.admitted += 1

    def take(self) -> Any | None:
        """Pop the next query in weighted-fair order (None when empty)."""
        best: _TenantLane | None = None
        best_key: tuple[float, int] | None = None
        for lane in self._lanes.values():
            if not lane.queue:
                continue
            finish_v, seq, _ = lane.queue[0]
            key = (finish_v, seq)
            if best_key is None or key < best_key:
                best, best_key = lane, key
        if best is None:
            return None
        finish_v, _, item = best.queue.popleft()
        self._virtual = max(self._virtual, finish_v)
        self._backlog -= 1
        return item

    def stats(self) -> dict[str, Any]:
        """Counters for the ``stats`` op and the benchmark audit."""
        return {
            "backlog": self._backlog,
            "admitted": self.admitted,
            "rejections": dict(self.rejections),
            "tenants": {
                t: {
                    "queued": len(lane.queue),
                    "weight": lane.weight,
                    "tokens": round(lane.bucket.tokens, 3),
                }
                for t, lane in self._lanes.items()
            },
        }
