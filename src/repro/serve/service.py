"""The asyncio query service: admission → breaker → cache → kernel.

One :class:`QueryService` owns one v2 store table and serves the SQL
subset plus the four benchmark tasks over the length-prefixed JSON
protocol (:mod:`repro.serve.protocol`).  The request path is designed
around failure first:

1. **admission** (connection handler) — per-tenant token bucket,
   bounded tenant queue, global shed threshold.  Rejections are
   explicit final frames with ``status="rejected"`` and a reason; a
   shed query may instead be answered from *stale* cache (marked);
2. **dispatch** (WFQ loop) — queries leave their tenant queues in
   weighted-fair order and wait for one of ``n_workers`` worker slots.
   A deadline that expires in the queue fails fast without ever
   touching a worker;
3. **breaker** — each query class has a circuit breaker fed by
   execution outcomes.  Open breaker: answer from cache as
   ``stale=true``, else fail fast with ``reason="circuit_open"``;
4. **cache** — fresh hits (same dataset version, within TTL) short-
   circuit execution entirely;
5. **execution** — worker threads run the block-wise cancellable
   kernels of :mod:`repro.serve.executor`; an expired deadline cancels
   the query at the next consumer-block boundary.

The no-silent-drop invariant: every request frame read off a connection
is answered by exactly one final frame (ok / rejected / error), and the
service counts both sides so the benchmark can audit it.
"""

from __future__ import annotations

import asyncio
import itertools
import time
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any

from repro.columnar.partstore import PartitionedStore
from repro.core.benchmark import Task
from repro.exceptions import (
    AdmissionError,
    DeadlineExceededError,
    InjectedCrash,
    ProtocolError,
    QueryCancelledError,
    ReproError,
)
from repro.serve.admission import AdmissionConfig, AdmissionController
from repro.serve.breaker import BreakerConfig, CircuitBreaker
from repro.serve.cache import CacheConfig, ResultCache, query_fingerprint
from repro.serve.executor import SQL_PAGE_ROWS, CancelToken, QueryExecutor
from repro.serve.protocol import read_frame, validate_request, write_frame
from repro.timeseries.series import Dataset

_TASKS = {t.value: t for t in Task}


@dataclass
class ServeConfig:
    """All service knobs in one bag (defaults fit the CI smoke scale)."""

    #: Worker threads running kernels (the concurrency of execution).
    n_workers: int = 2
    #: Consumer-block size of cancellable task execution.
    block_consumers: int = 64
    #: Kernel strategy of the per-consumer tasks.
    kernel: str = "batched"
    #: Default deadline applied when a request carries none.
    default_deadline_ms: float = 10_000.0
    #: May degraded paths serve stale cache unless the request opts out?
    allow_stale_default: bool = True
    admission: AdmissionConfig = field(default_factory=AdmissionConfig)
    breaker: BreakerConfig = field(default_factory=BreakerConfig)
    cache: CacheConfig = field(default_factory=CacheConfig)


class _Query:
    """One admitted query traveling from queue to worker to response."""

    __slots__ = (
        "request", "conn", "token", "t_recv", "t_dispatch", "qclass",
        "fingerprint",
    )

    def __init__(self, request: dict, conn: "_Connection",
                 token: CancelToken, qclass: str, fingerprint: str) -> None:
        self.request = request
        self.conn = conn
        self.token = token
        self.qclass = qclass
        self.fingerprint = fingerprint
        self.t_recv = time.monotonic()
        self.t_dispatch = self.t_recv


class _Connection:
    """Per-connection write lock + liveness for one client socket."""

    def __init__(self, writer: asyncio.StreamWriter) -> None:
        self.writer = writer
        self.lock = asyncio.Lock()
        self.open = True
        self.tokens: set[CancelToken] = set()

    async def send(self, payload: dict) -> bool:
        """Write one frame; False when the client is gone (audited,
        never raises into the query path)."""
        if not self.open:
            return False
        async with self.lock:
            try:
                await write_frame(self.writer, payload)
                return True
            except (ConnectionError, RuntimeError, OSError):
                self.open = False
                return False


class QueryService:
    """Serve one v2 store table to concurrent tenants with SLOs."""

    def __init__(
        self,
        store: PartitionedStore,
        table_name: str,
        config: ServeConfig | None = None,
    ) -> None:
        self.config = config or ServeConfig()
        self.executor = QueryExecutor(
            store,
            table_name,
            block_consumers=self.config.block_consumers,
            kernel=self.config.kernel,
        )
        self.admission = AdmissionController(self.config.admission)
        self.cache = ResultCache(self.config.cache)
        self.breakers: dict[str, CircuitBreaker] = {}
        self._pool = ThreadPoolExecutor(
            max_workers=self.config.n_workers,
            thread_name_prefix="serve-worker",
        )
        self._slots = asyncio.Semaphore(self.config.n_workers)
        self._wakeup = asyncio.Event()
        self._server: asyncio.base_events.Server | None = None
        self._dispatcher: asyncio.Task | None = None
        self._ingest_lock = asyncio.Lock()
        self._loop: asyncio.AbstractEventLoop | None = None
        self._inject: dict[str, int] = {}
        # The no-silent-drop ledger.
        self.requests_received = 0
        self.responses_sent = 0
        self.responses_by_status: dict[str, int] = {}
        self.client_gone = 0
        self._id = itertools.count()

    # -- lifecycle -------------------------------------------------------

    @classmethod
    def from_dataset(
        cls,
        dataset: Dataset,
        root: str | Path,
        config: ServeConfig | None = None,
        table_name: str = "readings",
    ) -> "QueryService":
        """Bootstrap a service by ingesting ``dataset`` into a fresh store."""
        store = PartitionedStore(root)
        store.ingest_dataset(dataset, name=table_name)
        return cls(store, table_name, config)

    async def start(self, host: str = "127.0.0.1", port: int = 0) -> None:
        """Bind, start accepting, start the WFQ dispatcher."""
        self._loop = asyncio.get_running_loop()
        self._server = await asyncio.start_server(
            self._handle_connection, host, port
        )
        self._dispatcher = asyncio.create_task(self._dispatch_loop())

    @property
    def port(self) -> int:
        assert self._server is not None, "service not started"
        return self._server.sockets[0].getsockname()[1]

    async def serve_forever(self) -> None:
        assert self._server is not None, "service not started"
        await self._server.serve_forever()

    async def stop(self) -> None:
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
        if self._dispatcher is not None:
            self._dispatcher.cancel()
            try:
                await self._dispatcher
            except asyncio.CancelledError:
                pass
        self._pool.shutdown(wait=False, cancel_futures=True)

    def breaker(self, qclass: str) -> CircuitBreaker:
        b = self.breakers.get(qclass)
        if b is None:
            b = self.breakers[qclass] = CircuitBreaker(self.config.breaker)
        return b

    def inject_failures(self, qclass: str, count: int) -> None:
        """Chaos hook: fail the next ``count`` executions of a class."""
        self._inject[qclass] = self._inject.get(qclass, 0) + count

    # -- ingest (the cache-invalidation path) ----------------------------

    async def ingest_batch(
        self, batch: Dataset, *, start_day: int | None = None,
        on_conflict: str = "error",
    ) -> dict[str, Any]:
        """Append whole days to the served table; bumps the dataset version.

        The store's commit listener (registered by the constructor's
        :class:`QueryExecutor`) is what ties ingest to invalidation:
        every entry cached against the old version is stale from here on.
        """
        async with self._ingest_lock:
            old_version = self.executor.dataset_version
            await asyncio.get_running_loop().run_in_executor(
                self._pool,
                lambda: self.executor.store.append_days(
                    self.executor.table_name, batch,
                    start_day=start_day, on_conflict=on_conflict,
                ),
            )
            # The store's commit listener (registered by the executor)
            # already re-opened the table on the ingesting thread.
            version = self.executor.dataset_version
            newly_stale = self.cache.note_version_bump(version)
        return {
            "dataset_version": version,
            "previous_version": old_version,
            "entries_invalidated": newly_stale,
            "n_days": self.executor.table.n_days,
        }

    # -- connection handling ---------------------------------------------

    async def _handle_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        conn = _Connection(writer)
        try:
            while True:
                try:
                    request = await read_frame(reader)
                except ProtocolError as exc:
                    # Malformed framing: answer once, then hang up (the
                    # stream position is unrecoverable).
                    self.requests_received += 1
                    await self._respond(conn, {
                        "id": None, "kind": "final", "status": "error",
                        "reason": "protocol_error", "message": str(exc),
                    })
                    return
                if request is None:
                    return
                self.requests_received += 1
                try:
                    await self._accept(conn, request)
                except Exception as exc:  # noqa: BLE001 - ledger backstop
                    # No silent drops: whatever escapes admission still
                    # owes the client exactly one final frame.
                    await self._respond(conn, {
                        "id": request.get("id"), "kind": "final",
                        "status": "error", "reason": "internal_error",
                        "message": f"{type(exc).__name__}: {exc}",
                    })
        finally:
            conn.open = False
            # A vanished client must not keep burning cores.
            for token in conn.tokens:
                token.cancel("client_disconnected")
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionError, OSError):
                pass

    async def _respond(self, conn: _Connection, payload: dict) -> None:
        status = payload.get("status", "ok")
        self.responses_sent += 1
        self.responses_by_status[status] = (
            self.responses_by_status.get(status, 0) + 1
        )
        if not await conn.send(payload):
            self.client_gone += 1

    async def _accept(self, conn: _Connection, request: dict) -> None:
        """Validate + admit one request frame; enqueue or answer now."""
        t0 = time.monotonic()
        try:
            validate_request(request)
        except ProtocolError as exc:
            await self._respond(conn, {
                "id": request.get("id"), "kind": "final",
                "status": "error", "reason": "bad_request",
                "message": str(exc),
            })
            return
        op = request["op"]
        params = request.get("params", {})
        if op == "ping":
            await self._respond(conn, {
                "id": request["id"], "kind": "final", "status": "ok",
                "result": {"pong": True,
                           "dataset_version": self.executor.dataset_version},
            })
            return
        if op == "stats":
            await self._respond(conn, {
                "id": request["id"], "kind": "final", "status": "ok",
                "result": self.stats(),
            })
            return
        if op == "append_days":
            await self._handle_append(conn, request)
            return
        if op == "task" and params.get("task") not in _TASKS:
            await self._respond(conn, {
                "id": request["id"], "kind": "final", "status": "error",
                "reason": "bad_request",
                "message": f"unknown task {params.get('task')!r}; "
                           f"expected one of {sorted(_TASKS)}",
            })
            return

        # An explicit ``"deadline_ms": null`` passes validation (None is
        # allowed) but must mean "use the default", not a TypeError.
        deadline_ms = request.get("deadline_ms")
        if deadline_ms is None:
            deadline_ms = self.config.default_deadline_ms
        token = CancelToken(deadline=t0 + deadline_ms / 1000.0)
        qclass = f"task:{params['task']}" if op == "task" else "sql"
        fingerprint = query_fingerprint(op, params)
        query = _Query(request, conn, token, qclass, fingerprint)
        tenant = request.get("tenant", "default")
        try:
            self.admission.offer(tenant, query)
        except AdmissionError as exc:
            allow_stale = request.get(
                "allow_stale", self.config.allow_stale_default
            )
            if exc.reason in ("overloaded", "queue_full") and allow_stale:
                # Degradation ladder: shed load onto yesterday's answer.
                hit = self.cache.get(
                    fingerprint, self.executor.dataset_version,
                    allow_stale=True,
                )
                if hit is not None:
                    await self._send_cached(
                        conn, request, hit[0],
                        stale=hit[1], degraded=exc.reason,
                    )
                    return
            await self._respond(conn, {
                "id": request["id"], "kind": "final", "status": "rejected",
                "reason": exc.reason, "message": str(exc),
                "retry_after_s": exc.retry_after_s,
            })
            return
        conn.tokens.add(token)
        self._wakeup.set()

    async def _handle_append(self, conn: _Connection, request: dict) -> None:
        """The wire ingest op (synthetic demo batch, see docs).

        Real ingest calls :meth:`ingest_batch` in-process; the wire op
        generates ``params["days"]`` seeded days for the table's cohort
        so remote clients can exercise invalidation end to end.
        """
        from repro.datagen.seed import SeedConfig, make_seed_dataset

        params = request.get("params", {})
        days = params.get("days", 1)
        if (isinstance(days, bool) or not isinstance(days, int)
                or not 1 <= days <= 366):
            await self._respond(conn, {
                "id": request["id"], "kind": "final", "status": "error",
                "reason": "bad_request",
                "message": f"'days' must be an int in [1, 366], got {days!r}",
            })
            return
        seed = params.get("seed", 997)
        if isinstance(seed, bool) or not isinstance(seed, int):
            await self._respond(conn, {
                "id": request["id"], "kind": "final", "status": "error",
                "reason": "bad_request",
                "message": f"'seed' must be an int, got {seed!r}",
            })
            return
        table = self.executor.table
        seeded = make_seed_dataset(SeedConfig(
            n_consumers=table.n_households,
            n_hours=days * 24,
            seed=seed,
        ))
        batch = Dataset(
            consumer_ids=list(table.dictionary),
            consumption=seeded.consumption,
            temperature=seeded.temperature,
            name="append",
        )
        try:
            result = await self.ingest_batch(batch)
        except ReproError as exc:
            await self._respond(conn, {
                "id": request["id"], "kind": "final", "status": "error",
                "reason": "ingest_error", "message": str(exc),
            })
            return
        await self._respond(conn, {
            "id": request["id"], "kind": "final", "status": "ok",
            "result": result,
        })

    # -- dispatch + execution --------------------------------------------

    async def _dispatch_loop(self) -> None:
        """Move queries from tenant queues to worker slots, WFQ order."""
        while True:
            query = self.admission.take()
            if query is None:
                self._wakeup.clear()
                await self._wakeup.wait()
                continue
            await self._slots.acquire()
            query.t_dispatch = time.monotonic()
            task = asyncio.create_task(self._process(query))
            task.add_done_callback(lambda _t: self._slots.release())

    def _timings(self, query: _Query, t_done: float) -> dict[str, float]:
        return {
            "queue_ms": round(
                (query.t_dispatch - query.t_recv) * 1e3, 3
            ),
            "exec_ms": round((t_done - query.t_dispatch) * 1e3, 3),
            "total_ms": round((t_done - query.t_recv) * 1e3, 3),
        }

    async def _process(self, query: _Query) -> None:
        """Breaker → cache → kernel for one dequeued query."""
        request, conn, token = query.request, query.conn, query.token
        version = self.executor.dataset_version
        allow_stale = request.get(
            "allow_stale", self.config.allow_stale_default
        )
        try:
            # Queue wait may have consumed the whole budget.
            remaining = token.remaining_s()
            if token.cancelled or (remaining is not None and remaining <= 0):
                await self._respond(conn, {
                    "id": request["id"], "kind": "final", "status": "error",
                    "reason": "deadline_exceeded_in_queue",
                    "message": "deadline expired before a worker was free",
                    "timings": self._timings(query, time.monotonic()),
                })
                return
            # Fresh cache hit costs no worker time and no breaker state.
            hit = self.cache.get(query.fingerprint, version)
            if hit is not None:
                await self._send_cached(
                    conn, request, hit[0], stale=False,
                    timings=self._timings(query, time.monotonic()),
                )
                return
            breaker = self.breaker(query.qclass)
            if not breaker.allow():
                stale_hit = self.cache.get(
                    query.fingerprint, version, allow_stale=True
                ) if allow_stale else None
                if stale_hit is not None:
                    await self._send_cached(
                        conn, request, stale_hit[0],
                        stale=stale_hit[1], degraded="circuit_open",
                        timings=self._timings(query, time.monotonic()),
                    )
                    return
                await self._respond(conn, {
                    "id": request["id"], "kind": "final", "status": "error",
                    "reason": "circuit_open",
                    "message": f"breaker for {query.qclass} is "
                               f"{breaker.state}; no cached result",
                    "timings": self._timings(query, time.monotonic()),
                })
                return
            await self._execute(query, breaker, version)
        finally:
            conn.tokens.discard(token)

    async def _execute(
        self, query: _Query, breaker: CircuitBreaker, version: int
    ) -> None:
        request, conn, token = query.request, query.conn, query.token
        loop = asyncio.get_running_loop()
        # The deadline timer: fires in the loop, cancels the token, and
        # the worker thread exits at its next block boundary.
        timer: asyncio.TimerHandle | None = None
        remaining = token.remaining_s()
        if remaining is not None:
            timer = loop.call_later(
                remaining, token.cancel, "deadline"
            )
        audit: dict[str, int] = {}
        streamed_rows: list[list] | None = None
        try:
            if self._inject.get(query.qclass, 0) > 0:
                self._inject[query.qclass] -= 1
                raise InjectedCrash(
                    f"injected failure for {query.qclass}"
                )
            if query.request["op"] == "sql":
                streamed_rows = []
                result = await loop.run_in_executor(
                    self._pool,
                    lambda: self.executor.run_sql(
                        request.get("params", {}).get("sql"),
                        token,
                        on_rows=self._row_streamer(
                            conn, request["id"], loop, streamed_rows
                        ),
                    ),
                )
            else:
                task = _TASKS[request["params"]["task"]]
                result, audit = await loop.run_in_executor(
                    self._pool,
                    lambda: self.executor.run_task(task, token),
                )
                result = {"task": task.value, "results": result, **audit}
        except (DeadlineExceededError, QueryCancelledError) as exc:
            if token.reason == "client_disconnected":
                # A vanished client says nothing about the class's
                # health; release any probe slot but record no outcome.
                breaker.record_abandoned()
            else:
                breaker.record_failure()
            reason = (
                "deadline_exceeded"
                if isinstance(exc, DeadlineExceededError)
                else "cancelled"
            )
            await self._respond(conn, {
                "id": request["id"], "kind": "final", "status": "error",
                "reason": reason, "message": str(exc),
                "timings": self._timings(query, time.monotonic()),
            })
            return
        except Exception as exc:  # noqa: BLE001 - every failure feeds the breaker
            breaker.record_failure()
            await self._respond(conn, {
                "id": request["id"], "kind": "final", "status": "error",
                "reason": "execution_error",
                "message": f"{type(exc).__name__}: {exc}",
                "timings": self._timings(query, time.monotonic()),
            })
            return
        finally:
            if timer is not None:
                timer.cancel()
        breaker.record_success()
        if streamed_rows is not None:
            # The final frame carries rows=None (the rows already went
            # out as partial frames), but the cache must hold the full
            # rows so a later hit can re-stream them (_send_cached) —
            # caching the rowless wire payload would answer repeat SQL
            # queries with row_count=N and no row data.
            self.cache.put(query.fingerprint, version,
                           {**result, "rows": streamed_rows})
        else:
            self.cache.put(query.fingerprint, version, result)
        await self._respond(conn, {
            "id": request["id"], "kind": "final", "status": "ok",
            "result": result, "cached": False, "stale": False,
            "timings": self._timings(query, time.monotonic()),
        })

    async def _send_cached(
        self,
        conn: _Connection,
        request: dict,
        value: Any,
        *,
        stale: bool,
        degraded: str | None = None,
        timings: dict[str, float] | None = None,
    ) -> None:
        """Answer one query from cache, wire-identical to live execution.

        Cached SQL results hold their full rows; those are re-streamed
        as ``kind="rows"`` partial frames and the final frame reverts to
        ``rows=None``, exactly like a live run.  Task results pass
        through untouched.
        """
        result = value
        if (
            request.get("op") == "sql"
            and isinstance(value, dict)
            and value.get("rows") is not None
        ):
            rows = value["rows"]
            for seq, lo in enumerate(range(0, len(rows), SQL_PAGE_ROWS)):
                if not await conn.send({
                    "id": request["id"], "kind": "rows", "seq": seq,
                    "rows": rows[lo : lo + SQL_PAGE_ROWS],
                }):
                    break  # client gone; the final frame audits it
            result = {**value, "rows": None}
        payload: dict[str, Any] = {
            "id": request["id"], "kind": "final", "status": "ok",
            "result": result, "cached": True, "stale": stale,
        }
        if degraded is not None:
            payload["degraded"] = degraded
        if timings is not None:
            payload["timings"] = timings
        await self._respond(conn, payload)

    def _row_streamer(
        self, conn: _Connection, request_id: str, loop,
        collected: list[list],
    ):
        """A worker-thread callback streaming SQL row pages as frames.

        Pages are also accumulated into ``collected`` so the service can
        cache the full row set alongside the columns/row_count summary.
        """
        seq = itertools.count()

        def on_rows(page: list) -> None:
            collected.extend(page)
            fut = asyncio.run_coroutine_threadsafe(
                conn.send({
                    "id": request_id, "kind": "rows",
                    "seq": next(seq), "rows": page,
                }),
                loop,
            )
            fut.result()  # backpressure: the kernel waits for the socket

        return on_rows

    # -- stats ------------------------------------------------------------

    def stats(self) -> dict[str, Any]:
        """Every ledger the SLO audit needs, in one JSON-able object."""
        return {
            "dataset_version": self.executor.dataset_version,
            "n_households": self.executor.table.n_households,
            "n_days": self.executor.table.n_days,
            "requests_received": self.requests_received,
            "responses_sent": self.responses_sent,
            "responses_by_status": dict(self.responses_by_status),
            "client_gone": self.client_gone,
            "admission": self.admission.stats(),
            "breakers": {
                qclass: b.snapshot() for qclass, b in self.breakers.items()
            },
            "cache": self.cache.stats(),
            "execution": {
                "blocks_executed": self.executor.blocks_executed,
                "blocks_cancelled": self.executor.blocks_cancelled,
            },
        }
