"""Deadline-aware query execution over the v2 store, block by block.

The execution unit of every task is one *consumer block* (the same
blocking :mod:`repro.columnar.outofcore` uses): per-consumer tasks run
the batched kernels on one block's sub-dataset at a time, similarity
runs one :data:`~repro.core.similarity.SIMILARITY_BLOCK_ROWS` row block
of the score matrix at a time.  Between blocks the worker thread checks
its :class:`CancelToken` — the cooperative-cancellation contract: when a
deadline expires or the client vanishes, the query raises out of the
worker *at the next block boundary* instead of burning cores to the
end.  Results are bit-identical to the whole-matrix run because every
block computes exactly the per-consumer (or per-row) arithmetic of the
reference kernels (see ``tests/test_serve.py::TestBlockIdentity``).

Serialization: results cross the wire as JSON.  Python's ``json`` emits
``repr``-shortest floats, which round-trip float64 exactly, so the
served payloads can be compared to golden engine output by equality.
"""

from __future__ import annotations

import threading
import time
from typing import Any, Callable

import numpy as np

from repro.columnar.outofcore import iter_consumer_blocks
from repro.columnar.partstore import PartitionedStore
from repro.core.benchmark import BenchmarkSpec, Task, run_task_reference
from repro.core.histogram import HistogramResult
from repro.core.par import ParModel
from repro.core.similarity import (
    SIMILARITY_BLOCK_ROWS,
    cosine_similarity_block,
    normalize_rows,
    rank_row,
)
from repro.core.threeline import PiecewiseLines, ThreeLineModel
from repro.exceptions import (
    DeadlineExceededError,
    ProtocolError,
    QueryCancelledError,
)
from repro.relational.catalog import Database
from repro.relational.layouts import TableLayout, load_dataset
from repro.relational.madlib import madlib_aggregates
from repro.sql.parser import parse_select
from repro.timeseries.series import Dataset

#: Query classes a circuit breaker is keyed by.
QUERY_CLASSES = (
    "sql",
    "task:histogram",
    "task:threeline",
    "task:par",
    "task:similarity",
)


class CancelToken:
    """A cross-thread cancellation flag checked between consumer blocks.

    ``deadline`` is an absolute ``time.monotonic()`` instant (None =
    no deadline).  ``cancel(reason)`` flips the flag from any thread;
    ``check()`` — called by the worker between blocks — raises
    :class:`DeadlineExceededError` or :class:`QueryCancelledError`.
    """

    def __init__(self, deadline: float | None = None) -> None:
        self.deadline = deadline
        self._cancelled = threading.Event()
        self.reason: str | None = None

    def cancel(self, reason: str = "cancelled") -> None:
        if not self._cancelled.is_set():
            self.reason = reason
            self._cancelled.set()

    @property
    def cancelled(self) -> bool:
        return self._cancelled.is_set()

    def remaining_s(self) -> float | None:
        if self.deadline is None:
            return None
        return self.deadline - time.monotonic()

    def check(self) -> None:
        """Raise if the query should stop; the between-blocks hook."""
        if self._cancelled.is_set():
            if self.reason == "deadline":
                raise DeadlineExceededError(
                    "deadline expired mid-execution"
                )
            raise QueryCancelledError(self.reason or "cancelled")
        remaining = self.remaining_s()
        if remaining is not None and remaining <= 0:
            self.cancel("deadline")
            raise DeadlineExceededError("deadline expired mid-execution")


# -- result serialization (exact float64 round-trip through JSON) -----------

def _floats(values) -> list[float]:
    return [float(v) for v in np.asarray(values).ravel()]


def _serialize_band(band: PiecewiseLines) -> dict[str, Any]:
    return {
        "lines": [[line.slope, line.intercept] for line in band.lines],
        "breakpoints": list(band.breakpoints),
        "sse": band.sse,
        "adjusted": band.adjusted,
    }


def serialize_result(task: Task, result: Any) -> Any:
    """One consumer's task result as a JSON-able structure."""
    if task is Task.HISTOGRAM:
        assert isinstance(result, HistogramResult)
        return {
            "edges": _floats(result.edges),
            "counts": [int(c) for c in result.counts],
        }
    if task is Task.THREELINE:
        assert isinstance(result, ThreeLineModel)
        return {
            "band_upper": _serialize_band(result.band_upper),
            "band_lower": _serialize_band(result.band_lower),
            "heating_gradient": result.heating_gradient,
            "cooling_gradient": result.cooling_gradient,
            "base_load": result.base_load,
            "temperature_range": list(result.temperature_range),
        }
    if task is Task.PAR:
        assert isinstance(result, ParModel)
        return {
            "profile": _floats(result.profile),
            "p": result.p,
            "temperature_mode": result.temperature_mode,
            "hours": [
                {
                    "hour": m.hour,
                    "coefficients": _floats(m.coefficients),
                    "sse": m.sse,
                    "n_observations": m.n_observations,
                }
                for m in result.hour_models
            ],
        }
    if task is Task.SIMILARITY:
        return [[cid, score] for cid, score in result]
    raise ValueError(f"unknown task: {task!r}")


def serialize_task_results(task: Task, results: dict[str, Any]) -> dict:
    """A whole task answer: ``{consumer_id: serialized_result}``."""
    return {cid: serialize_result(task, r) for cid, r in results.items()}


# -- the executor -----------------------------------------------------------

class QueryExecutor:
    """Executes queries over one v2 store table, block by block.

    Owns the dataset-version bookkeeping: the version *is* the table's
    commit counter, re-read whenever the store reports a commit.  The
    in-memory dataset view and the SQL database are rebuilt lazily per
    version, so an ``append_days`` ingest invalidates both without
    stalling in-flight queries on the old view.
    """

    def __init__(
        self,
        store: PartitionedStore,
        table_name: str,
        *,
        block_consumers: int = 64,
        kernel: str = "batched",
    ) -> None:
        self.store = store
        self.table_name = table_name
        self.block_consumers = int(block_consumers)
        self.spec = BenchmarkSpec(kernel=kernel)
        self.table = store.open(table_name)
        store.on_commit(self._on_store_commit)
        self._view_lock = threading.Lock()
        self._dataset: tuple[int, Dataset] | None = None
        self._sql_db: tuple[int, Database] | None = None
        #: Cancellation audit: blocks actually executed vs planned, per
        #: cancelled query — the "stops burning cores" evidence.  The
        #: counters are shared by all worker threads, so every increment
        #: holds ``_audit_lock`` (a bare ``+=`` loses updates under
        #: n_workers > 1 and the stats op would undercount).
        self._audit_lock = threading.Lock()
        self.blocks_executed = 0
        self.blocks_cancelled = 0

    @property
    def dataset_version(self) -> int:
        """The current dataset version (the table's commit counter)."""
        return self.table.commit

    def refresh(self) -> int:
        """Re-open the table after an ingest; returns the new version."""
        self.table = self.store.open(self.table_name)
        return self.dataset_version

    def _on_store_commit(self, name: str, commit: int) -> None:
        """The store's commit listener: every landed ingest of this
        table re-opens it, so the next query sees the new version."""
        if name == self.table_name:
            self.refresh()

    def _current_dataset(self) -> Dataset:
        """The whole table as an in-memory Dataset, cached per version."""
        version = self.dataset_version
        with self._view_lock:
            if self._dataset is not None and self._dataset[0] == version:
                return self._dataset[1]
        ids, matrices = self.table.read_matrices()
        dataset = Dataset(
            consumer_ids=list(ids),
            consumption=matrices["consumption"],
            temperature=matrices["temperature"],
            name=self.table_name,
        )
        with self._view_lock:
            self._dataset = (version, dataset)
        return dataset

    def _sql_database(self) -> Database:
        """The SQL view of the current version, cached per version.

        READINGS layout (one row per reading) so scalar aggregates and
        GROUP BY work over plain columns, as in the paper's SQL track.
        """
        version = self.dataset_version
        with self._view_lock:
            if self._sql_db is not None and self._sql_db[0] == version:
                return self._sql_db[1]
        db = Database()
        load_dataset(
            db, self._current_dataset(), TableLayout.READINGS,
            table_name=self.table_name,
        )
        with self._view_lock:
            self._sql_db = (version, db)
        return db

    # -- query entry points (run on worker threads) ---------------------

    def run_task(
        self, task: Task, token: CancelToken
    ) -> tuple[dict, dict[str, int]]:
        """One benchmark task over the whole table; blockwise + cancellable.

        Returns ``(serialized_results, block_audit)`` where the audit
        reports ``blocks_done``/``blocks_total`` — a cancelled query
        shows ``blocks_done < blocks_total``.
        """
        token.check()
        if task is Task.SIMILARITY:
            return self._run_similarity(token)
        n = self.table.n_households
        total = -(-n // self.block_consumers)
        done = 0
        out: dict = {}
        try:
            for _c0, ids, matrices in iter_consumer_blocks(
                self.table, block_consumers=self.block_consumers
            ):
                token.check()
                block = Dataset(
                    consumer_ids=list(ids),
                    consumption=matrices["consumption"],
                    temperature=matrices["temperature"],
                )
                results = run_task_reference(block, task, self.spec)
                out.update(serialize_task_results(task, results))
                done += 1
                with self._audit_lock:
                    self.blocks_executed += 1
        except (DeadlineExceededError, QueryCancelledError):
            with self._audit_lock:
                self.blocks_cancelled += total - done
            raise
        return out, {"blocks_done": done, "blocks_total": total}

    def _run_similarity(
        self, token: CancelToken
    ) -> tuple[dict, dict[str, int]]:
        """Top-k similarity, row-block by row-block (bit-identical to
        :func:`repro.core.similarity.top_k_similar`)."""
        dataset = self._current_dataset()
        ids = dataset.consumer_ids
        normalized = normalize_rows(dataset.consumption)
        n = len(ids)
        total = -(-n // SIMILARITY_BLOCK_ROWS) if n else 0
        done = 0
        out: dict = {}
        k = self.spec.top_k
        try:
            for lo in range(0, n, SIMILARITY_BLOCK_ROWS):
                token.check()
                hi = min(n, lo + SIMILARITY_BLOCK_ROWS)
                sims = cosine_similarity_block(normalized, lo, hi)
                for row in range(lo, hi):
                    out[ids[row]] = [
                        [ids[i], score]
                        for i, score in rank_row(sims[row - lo], row, k)
                    ]
                done += 1
                with self._audit_lock:
                    self.blocks_executed += 1
        except (DeadlineExceededError, QueryCancelledError):
            with self._audit_lock:
                self.blocks_cancelled += total - done
            raise
        return out, {"blocks_done": done, "blocks_total": total}

    def run_sql(
        self, sql: str, token: CancelToken, on_rows: Callable | None = None
    ) -> dict[str, Any]:
        """Execute one SELECT of the SQL subset against the current version.

        ``on_rows(page)`` — when given — receives the result in pages of
        :data:`SQL_PAGE_ROWS` JSON-able rows as they are cut, which is
        what the service streams as partial frames (time-to-first-row).
        """
        from repro.relational.executor import execute_select

        token.check()
        if not isinstance(sql, str) or not sql.strip():
            raise ProtocolError("'sql' param must be a non-empty SELECT")
        db = self._sql_database()
        token.check()
        result = execute_select(
            db, parse_select(sql), aggregates=madlib_aggregates()
        )
        token.check()
        rows = [[_jsonable(v) for v in row] for row in result.rows]
        if on_rows is not None:
            for lo in range(0, len(rows), SQL_PAGE_ROWS):
                token.check()
                on_rows(rows[lo : lo + SQL_PAGE_ROWS])
        return {"columns": list(result.columns), "row_count": len(rows),
                "rows": None if on_rows is not None else rows}


#: Rows per streamed SQL partial frame.
SQL_PAGE_ROWS = 256


def _jsonable(value: Any) -> Any:
    """One SQL cell as a JSON-able value (numpy scalars/arrays unwrapped)."""
    if isinstance(value, np.generic):
        return value.item()
    if isinstance(value, np.ndarray):
        return value.tolist()
    return value
