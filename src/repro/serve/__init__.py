"""``repro.serve`` — the overload-safe multi-tenant query service.

ROADMAP item 2: the engines are library-only; this package promotes the
single-server experiments (:mod:`repro.harness.single_server`) into a
long-running asyncio service that exposes the SQL subset plus the four
benchmark tasks over a length-prefixed JSON wire protocol, designed
around failure first:

* **admission control** (:mod:`repro.serve.admission`) — per-tenant
  token buckets and weighted fair queueing over bounded tenant queues;
  overload is shed with explicit 429-style rejections, never silent
  buffering;
* **deadline propagation** (:mod:`repro.serve.executor`) — the client's
  budget travels from admission through queue wait into kernel
  execution, which cancels cooperatively between consumer blocks so a
  timed-out query stops burning cores;
* **circuit breakers** (:mod:`repro.serve.breaker`) — per-query-class
  error/timeout-rate trips with half-open probe recovery;
* **graceful degradation** (:mod:`repro.serve.cache`) — an LRU/TTL
  result cache keyed by (query fingerprint, dataset version),
  invalidated by ingest appends, that may serve explicitly-marked
  ``stale=true`` results when the breaker is open or the queue is
  saturated.

``benchmarks/bench_serve.py`` drives the DAT300-style scenario/stress
workloads against it and ``benchmarks/regress.py --serve`` gates the
SLOs (bounded stress P99, zero silent drops, golden bit-identity).
"""

from repro.serve.admission import AdmissionController, AdmissionConfig, TokenBucket
from repro.serve.breaker import BreakerConfig, CircuitBreaker
from repro.serve.cache import CacheConfig, ResultCache, query_fingerprint
from repro.serve.client import ServeClient
from repro.serve.executor import CancelToken, QueryExecutor
from repro.serve.protocol import (
    MAX_FRAME_BYTES,
    encode_frame,
    read_frame,
    write_frame,
)
from repro.serve.service import QueryService, ServeConfig

__all__ = [
    "AdmissionConfig",
    "AdmissionController",
    "BreakerConfig",
    "CacheConfig",
    "CancelToken",
    "CircuitBreaker",
    "MAX_FRAME_BYTES",
    "QueryExecutor",
    "QueryService",
    "ResultCache",
    "ServeClient",
    "ServeConfig",
    "TokenBucket",
    "encode_frame",
    "query_fingerprint",
    "read_frame",
    "write_frame",
]
