"""Async client for the query service (one connection, multiplexed).

Requests are assigned ids and may be issued concurrently over one
socket; a background reader task routes incoming frames (row pages +
the final frame) back to the right caller.  The client also measures
what the SLO harness reports: time-to-first-row (first frame of the
response, row page or final) and total latency, both client-side.
"""

from __future__ import annotations

import asyncio
import itertools
import time
from dataclasses import dataclass, field
from typing import Any

from repro.exceptions import ProtocolError, ServeError
from repro.serve.protocol import read_frame, write_frame


@dataclass
class ServeResponse:
    """One request's outcome, as observed by the client."""

    final: dict[str, Any]
    rows: list[list] = field(default_factory=list)
    #: Seconds from send to the first response frame (row page or final).
    ttfr_s: float = 0.0
    #: Seconds from send to the final frame.
    total_s: float = 0.0

    @property
    def status(self) -> str:
        return self.final.get("status", "error")

    @property
    def ok(self) -> bool:
        return self.status == "ok"

    @property
    def result(self) -> Any:
        return self.final.get("result")

    @property
    def stale(self) -> bool:
        return bool(self.final.get("stale", False))

    @property
    def reason(self) -> str | None:
        return self.final.get("reason")


class _Pending:
    __slots__ = ("future", "rows", "t_sent", "t_first")

    def __init__(self, future: asyncio.Future, t_sent: float) -> None:
        self.future = future
        self.rows: list[list] = []
        self.t_sent = t_sent
        self.t_first: float | None = None


class ServeClient:
    """One multiplexed connection to a :class:`QueryService`."""

    def __init__(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        self._reader = reader
        self._writer = writer
        self._pending: dict[str, _Pending] = {}
        self._ids = itertools.count()
        self._closed = False
        self._reader_task = asyncio.create_task(self._read_loop())

    @classmethod
    async def connect(cls, host: str, port: int) -> "ServeClient":
        reader, writer = await asyncio.open_connection(host, port)
        return cls(reader, writer)

    async def close(self) -> None:
        self._closed = True
        self._reader_task.cancel()
        try:
            await self._reader_task
        except asyncio.CancelledError:
            pass
        self._writer.close()
        try:
            await self._writer.wait_closed()
        except (ConnectionError, OSError):
            pass
        self._fail_pending(ServeError("connection closed"))

    def _fail_pending(self, exc: Exception) -> None:
        for pending in self._pending.values():
            if not pending.future.done():
                pending.future.set_exception(exc)
        self._pending.clear()

    async def _read_loop(self) -> None:
        try:
            while True:
                frame = await read_frame(self._reader)
                if frame is None:
                    self._fail_pending(
                        ServeError("server closed the connection")
                    )
                    return
                self._route(frame)
        except asyncio.CancelledError:
            raise
        except (ProtocolError, ConnectionError, OSError) as exc:
            self._fail_pending(ServeError(f"connection lost: {exc}"))

    def _route(self, frame: dict) -> None:
        request_id = frame.get("id")
        pending = self._pending.get(request_id)
        if pending is None:
            # A response to a request that already failed locally (e.g.
            # a protocol_error broadcast with id=None); nothing to do.
            return
        now = time.monotonic()
        if pending.t_first is None:
            pending.t_first = now
        if frame.get("kind") == "rows":
            pending.rows.extend(frame.get("rows", []))
            return
        del self._pending[request_id]
        if not pending.future.done():
            pending.future.set_result((frame, pending, now))

    async def request(
        self,
        op: str,
        params: dict[str, Any] | None = None,
        *,
        tenant: str = "default",
        deadline_ms: float | None = None,
        allow_stale: bool | None = None,
    ) -> ServeResponse:
        """Issue one request and wait for its final frame.

        ``deadline_ms`` is the client's whole budget: it is propagated to
        the server (queue wait + execution) and also enforced locally
        with slack for the response to travel back.
        """
        if self._closed:
            raise ServeError("client is closed")
        request_id = f"q{next(self._ids)}"
        payload: dict[str, Any] = {
            "id": request_id,
            "op": op,
            "tenant": tenant,
            "params": params or {},
        }
        if deadline_ms is not None:
            payload["deadline_ms"] = deadline_ms
        if allow_stale is not None:
            payload["allow_stale"] = allow_stale
        t_sent = time.monotonic()
        pending = _Pending(asyncio.get_running_loop().create_future(), t_sent)
        self._pending[request_id] = pending
        await write_frame(self._writer, payload)
        timeout = None
        if deadline_ms is not None:
            timeout = deadline_ms / 1000.0 + 5.0  # slack: server replies
        try:
            final, pending, t_done = await asyncio.wait_for(
                pending.future, timeout
            )
        except asyncio.TimeoutError:
            self._pending.pop(request_id, None)
            raise ServeError(
                f"request {request_id} got no final frame within "
                f"{timeout:.1f}s (deadline {deadline_ms}ms + slack)"
            ) from None
        return ServeResponse(
            final=final,
            rows=pending.rows,
            ttfr_s=(pending.t_first or t_done) - t_sent,
            total_s=t_done - t_sent,
        )
