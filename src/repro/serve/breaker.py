"""Per-query-class circuit breakers with half-open probe recovery.

One breaker guards one query class (``sql``, ``task:histogram``, ...).
State machine:

* **closed** — outcomes are recorded in a sliding window of the last
  ``window`` calls; once the window holds ``min_samples`` results and
  the failure fraction (errors + timeouts) reaches ``trip_ratio``, the
  breaker opens;
* **open** — calls fail fast (or are served stale from cache by the
  degradation ladder) for ``cooldown_s``; then the breaker half-opens;
* **half-open** — up to ``probe_limit`` concurrent calls are let
  through as probes.  ``probe_successes`` consecutive probe successes
  close the breaker (window reset); any probe failure re-opens it and
  restarts the cooldown.

The clock is injectable so tests step through cooldowns without
sleeping.
"""

from __future__ import annotations

import time
from collections import deque
from dataclasses import dataclass
from typing import Callable

CLOSED = "closed"
OPEN = "open"
HALF_OPEN = "half_open"


@dataclass
class BreakerConfig:
    """Trip/recovery knobs of one circuit breaker."""

    #: Sliding window length (call outcomes) the trip ratio is over.
    window: int = 20
    #: Outcomes required before the breaker may trip at all.
    min_samples: int = 8
    #: Failure fraction of the window that trips the breaker.
    trip_ratio: float = 0.5
    #: Seconds the breaker stays open before half-opening.
    cooldown_s: float = 2.0
    #: Concurrent probes allowed while half-open.
    probe_limit: int = 1
    #: Consecutive probe successes that close the breaker again.
    probe_successes: int = 2


class CircuitBreaker:
    """One query class's breaker; the service holds one per class."""

    def __init__(
        self,
        config: BreakerConfig | None = None,
        clock: Callable[[], float] = time.monotonic,
    ) -> None:
        self.config = config or BreakerConfig()
        self._clock = clock
        self.state = CLOSED
        self._outcomes: deque[bool] = deque(maxlen=self.config.window)
        self._opened_at = 0.0
        self._probes_inflight = 0
        self._probe_wins = 0
        self.trips = 0  # lifetime trip count, for stats

    def _tick(self) -> None:
        if (
            self.state == OPEN
            and self._clock() - self._opened_at >= self.config.cooldown_s
        ):
            self.state = HALF_OPEN
            self._probes_inflight = 0
            self._probe_wins = 0

    def allow(self) -> bool:
        """May a call proceed right now?  (Half-open: claims a probe slot.)"""
        self._tick()
        if self.state == CLOSED:
            return True
        if self.state == HALF_OPEN:
            if self._probes_inflight < self.config.probe_limit:
                self._probes_inflight += 1
                return True
            return False
        return False

    def _trip(self) -> None:
        self.state = OPEN
        self._opened_at = self._clock()
        self.trips += 1

    def record_success(self) -> None:
        """A call (or probe) finished within its deadline without error."""
        if self.state == HALF_OPEN:
            self._probes_inflight = max(0, self._probes_inflight - 1)
            self._probe_wins += 1
            if self._probe_wins >= self.config.probe_successes:
                self.state = CLOSED
                self._outcomes.clear()
            return
        self._outcomes.append(True)

    def record_abandoned(self) -> None:
        """The call ended for reasons unrelated to query-class health
        (e.g. the client vanished mid-execution): release any half-open
        probe slot but record no outcome, so a burst of disconnecting
        clients cannot trip a healthy class's breaker."""
        if self.state == HALF_OPEN:
            self._probes_inflight = max(0, self._probes_inflight - 1)

    def record_failure(self) -> None:
        """A call errored or timed out; may trip or re-open the breaker."""
        if self.state == HALF_OPEN:
            self._probes_inflight = max(0, self._probes_inflight - 1)
            self._trip()  # a failed probe re-opens immediately
            return
        if self.state == OPEN:
            return  # fail-fast path; nothing to record
        self._outcomes.append(False)
        if len(self._outcomes) >= self.config.min_samples:
            failures = sum(1 for ok in self._outcomes if not ok)
            if failures / len(self._outcomes) >= self.config.trip_ratio:
                self._trip()

    def snapshot(self) -> dict:
        """State for the ``stats`` op."""
        self._tick()
        failures = sum(1 for ok in self._outcomes if not ok)
        return {
            "state": self.state,
            "window": len(self._outcomes),
            "failures": failures,
            "trips": self.trips,
        }
