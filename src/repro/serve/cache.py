"""LRU/TTL result cache keyed by (query fingerprint, dataset version).

The fingerprint is a stable hash of the query's semantic content (op +
canonicalized params) — two clients sending the same histogram request
share one entry.  The *dataset version* is the v2 store's commit
counter: an ``append_days`` ingest bumps it, so every entry written
against the old version silently becomes **stale** rather than wrong.

Stale entries are not discarded: they are the bottom rung of the
degradation ladder.  When a query class's breaker is open, or the
queue is saturated, the service may answer from a stale entry — always
explicitly marked ``stale=true`` on the wire, never passed off as
fresh.  ``max_stale_s`` bounds how old such an answer may be.
"""

from __future__ import annotations

import hashlib
import json
import time
from collections import OrderedDict
from dataclasses import dataclass
from typing import Any, Callable


def query_fingerprint(op: str, params: dict[str, Any]) -> str:
    """Stable hash of a query's semantic content (op + sorted params)."""
    canonical = json.dumps(
        {"op": op, "params": params}, sort_keys=True, separators=(",", ":")
    )
    return hashlib.sha256(canonical.encode("utf-8")).hexdigest()[:24]


@dataclass
class CacheConfig:
    """Size/age knobs of the result cache."""

    #: Entries kept (LRU eviction beyond this).
    max_entries: int = 256
    #: Seconds a fresh entry stays servable as fresh.
    ttl_s: float = 300.0
    #: Oldest result the degradation ladder may serve as ``stale=true``
    #: (entries beyond this are evicted rather than served).
    max_stale_s: float = 3600.0


class _Entry:
    __slots__ = ("value", "version", "stored_at")

    def __init__(self, value: Any, version: int, stored_at: float) -> None:
        self.value = value
        self.version = version
        self.stored_at = stored_at


class ResultCache:
    """LRU + TTL + dataset-version cache with an explicit stale tier."""

    def __init__(
        self,
        config: CacheConfig | None = None,
        clock: Callable[[], float] = time.monotonic,
    ) -> None:
        self.config = config or CacheConfig()
        self._clock = clock
        self._entries: OrderedDict[str, _Entry] = OrderedDict()
        self.hits = 0
        self.stale_hits = 0
        self.misses = 0
        self.invalidations = 0

    def __len__(self) -> int:
        return len(self._entries)

    def put(self, fingerprint: str, version: int, value: Any) -> None:
        """Store a fresh result computed at ``version``."""
        self._entries.pop(fingerprint, None)
        self._entries[fingerprint] = _Entry(value, version, self._clock())
        while len(self._entries) > self.config.max_entries:
            self._entries.popitem(last=False)

    def get(
        self, fingerprint: str, version: int, allow_stale: bool = False
    ) -> tuple[Any, bool] | None:
        """``(value, stale)`` or ``None``.

        Fresh = same dataset version and within ``ttl_s``.  With
        ``allow_stale`` (the degradation ladder), an entry from an older
        version or past its TTL is still served — marked stale — as
        long as it is younger than ``max_stale_s``.
        """
        entry = self._entries.get(fingerprint)
        if entry is None:
            self.misses += 1
            return None
        age = self._clock() - entry.stored_at
        if age > self.config.max_stale_s:
            del self._entries[fingerprint]
            self.misses += 1
            return None
        fresh = entry.version == version and age <= self.config.ttl_s
        if not fresh and not allow_stale:
            self.misses += 1
            return None
        self._entries.move_to_end(fingerprint)
        if fresh:
            self.hits += 1
        else:
            self.stale_hits += 1
        return entry.value, not fresh

    def note_version_bump(self, version: int) -> int:
        """An ingest advanced the dataset version; count newly-stale entries.

        Entries are *kept* (they feed the stale tier of the degradation
        ladder) — this only audits how many fresh entries the bump
        invalidated, which the stats op reports.
        """
        newly_stale = sum(
            1 for e in self._entries.values() if e.version < version
        )
        self.invalidations += newly_stale
        return newly_stale

    def stats(self) -> dict[str, Any]:
        return {
            "entries": len(self._entries),
            "hits": self.hits,
            "stale_hits": self.stale_hits,
            "misses": self.misses,
            "invalidated": self.invalidations,
        }
