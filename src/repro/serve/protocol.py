"""Length-prefixed JSON wire protocol of the query service.

One frame = a 4-byte big-endian unsigned length followed by that many
bytes of UTF-8 JSON (one object).  JSON keeps the protocol debuggable
with ``nc``/``socat`` and — because Python's ``json`` emits ``repr``-
shortest floats, which round-trip ``float64`` exactly — task results
survive the wire bit for bit, which is what lets the benchmark compare
served answers against the golden engine output by equality.

Request frames::

    {"id": "q1", "op": "task", "tenant": "analyst-a",
     "params": {"task": "histogram"}, "deadline_ms": 2000,
     "allow_stale": true}

``op`` is one of :data:`OPS`.  Response frames echo ``id``; a request
may receive zero or more ``kind="rows"`` partial frames (SQL row pages —
this is what time-to-first-row measures) followed by exactly one
``kind="final"`` frame carrying ``status`` (``ok`` / ``rejected`` /
``error``), the payload, and the server-side timing breakdown.  Every
rejection names a machine-readable ``reason`` — the no-silent-drops
contract is that each accepted frame is answered by exactly one final
frame, whatever happens in between.
"""

from __future__ import annotations

import asyncio
import json
import struct
from typing import Any

from repro.exceptions import ProtocolError

#: Hard ceiling on one frame's payload; a length prefix beyond it is a
#: protocol violation (it would buffer unboundedly), not a big request.
MAX_FRAME_BYTES = 64 * 1024 * 1024

#: Operations the service understands.
OPS = ("ping", "sql", "task", "append_days", "stats")

_LEN = struct.Struct(">I")


def encode_frame(payload: dict[str, Any]) -> bytes:
    """One wire frame: length prefix + compact JSON."""
    body = json.dumps(payload, separators=(",", ":")).encode("utf-8")
    if len(body) > MAX_FRAME_BYTES:
        raise ProtocolError(
            f"frame of {len(body)} bytes exceeds MAX_FRAME_BYTES "
            f"({MAX_FRAME_BYTES})"
        )
    return _LEN.pack(len(body)) + body


def decode_payload(body: bytes) -> dict[str, Any]:
    """Parse one frame body; raises :class:`ProtocolError` on bad JSON."""
    try:
        payload = json.loads(body.decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError) as exc:
        raise ProtocolError(f"undecodable frame: {exc}") from exc
    if not isinstance(payload, dict):
        raise ProtocolError(
            f"frame must be a JSON object, got {type(payload).__name__}"
        )
    return payload


async def read_frame(reader: asyncio.StreamReader) -> dict[str, Any] | None:
    """Read one frame; ``None`` on clean EOF at a frame boundary."""
    try:
        prefix = await reader.readexactly(_LEN.size)
    except asyncio.IncompleteReadError as exc:
        if not exc.partial:
            return None  # clean close between frames
        raise ProtocolError(
            f"connection closed mid-prefix ({len(exc.partial)}/4 bytes)"
        ) from exc
    (length,) = _LEN.unpack(prefix)
    if length > MAX_FRAME_BYTES:
        raise ProtocolError(
            f"frame length {length} exceeds MAX_FRAME_BYTES "
            f"({MAX_FRAME_BYTES})"
        )
    try:
        body = await reader.readexactly(length)
    except asyncio.IncompleteReadError as exc:
        raise ProtocolError(
            f"connection closed mid-frame ({len(exc.partial)}/{length} bytes)"
        ) from exc
    return decode_payload(body)


async def write_frame(
    writer: asyncio.StreamWriter, payload: dict[str, Any]
) -> None:
    """Write one frame and drain (the draining is the backpressure)."""
    writer.write(encode_frame(payload))
    await writer.drain()


def validate_request(payload: dict[str, Any]) -> None:
    """Schema-check one request frame; raises :class:`ProtocolError`."""
    request_id = payload.get("id")
    if not isinstance(request_id, str) or not request_id:
        raise ProtocolError("request frame needs a non-empty string 'id'")
    op = payload.get("op")
    if op not in OPS:
        raise ProtocolError(f"unknown op {op!r}; expected one of {OPS}")
    tenant = payload.get("tenant", "default")
    if not isinstance(tenant, str) or not tenant:
        raise ProtocolError("'tenant' must be a non-empty string")
    deadline_ms = payload.get("deadline_ms")
    if deadline_ms is not None and (
        not isinstance(deadline_ms, (int, float)) or deadline_ms <= 0
    ):
        raise ProtocolError(
            f"'deadline_ms' must be a positive number, got {deadline_ms!r}"
        )
    params = payload.get("params", {})
    if not isinstance(params, dict):
        raise ProtocolError("'params' must be an object")
