"""The paper's contribution: four benchmark algorithms and the data generator.

* :mod:`repro.core.histogram` — Task 1, consumption histograms (Section 3.1);
* :mod:`repro.core.threeline` — Task 2, 3-line thermal regression (3.2);
* :mod:`repro.core.par` — Task 3, periodic autoregression profiles (3.3);
* :mod:`repro.core.similarity` — Task 4, top-k cosine similarity (3.4);
* :mod:`repro.core.kmeans` — k-means used by the generator (Section 4);
* :mod:`repro.core.generator` — the realistic data generator (Section 4);
* :mod:`repro.core.benchmark` — task registry and reference runner.

The implementations here are the *reference* kernels: each platform engine
in :mod:`repro.engines` either calls these (the "built-in function"
platforms of Table 1) or re-implements them from scratch (System C, Spark,
Hive) and is validated against them.
"""

from repro.core.benchmark import (
    AR_ORDER,
    NUM_BUCKETS,
    TOP_K,
    Task,
    run_task_reference,
)
from repro.core.generator import GeneratorConfig, SmartMeterGenerator
from repro.core.histogram import HistogramResult, equi_width_histogram
from repro.core.kmeans import KMeansResult, kmeans
from repro.core.par import ParModel, fit_par
from repro.core.similarity import top_k_similar
from repro.core.threeline import ThreeLineModel, fit_three_lines

__all__ = [
    "AR_ORDER",
    "GeneratorConfig",
    "HistogramResult",
    "KMeansResult",
    "NUM_BUCKETS",
    "ParModel",
    "SmartMeterGenerator",
    "TOP_K",
    "Task",
    "ThreeLineModel",
    "equi_width_histogram",
    "fit_par",
    "fit_three_lines",
    "kmeans",
    "run_task_reference",
    "top_k_similar",
]
