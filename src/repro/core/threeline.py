"""Task 2 — the 3-line thermal-sensitivity algorithm (paper Section 3.2).

The algorithm of Birt et al. [10], as specified by the paper (Figure 1):

1. **T1 (quantiles)** — group the hourly readings by (rounded) outdoor
   temperature and compute the 10th and 90th percentile consumption for each
   temperature value;
2. **T2 (regression)** — for each percentile band, fit a piecewise model of
   three least-squares lines over the (temperature, percentile) points,
   choosing the two breakpoints that minimize total squared error;
3. **T3 (adjust)** — ensure the three lines are continuous, adjusting them
   slightly where the independently fitted segments do not already meet.

Outputs per consumer: the two 3-line bands plus the derived quantities the
paper highlights — the *heating gradient* and *cooling gradient* (slopes of
the outer 90th-percentile lines) and the *base load* (the height of the
lowest point on the 10th-percentile lines).

The three phases are individually timed through an optional ``phases`` dict
because the paper's Figure 6 reports the T1/T2/T3 breakdown.
"""

from __future__ import annotations

import time
from dataclasses import dataclass

import numpy as np

from repro.core.stats import Line, PrefixSumOLS, percentile_linear
from repro.exceptions import DataError, InsufficientDataError
from repro.timeseries.series import Dataset

#: Percentile bands used by the algorithm (paper Figure 1).
LOWER_PERCENTILE = 10.0
UPPER_PERCENTILE = 90.0


@dataclass(frozen=True)
class PiecewiseLines:
    """Three continuous line segments split at two breakpoints."""

    lines: tuple[Line, Line, Line]
    breakpoints: tuple[float, float]
    sse: float
    adjusted: bool

    def predict(self, x: float | np.ndarray) -> np.ndarray:
        """Evaluate the piecewise model at ``x`` (scalar or array)."""
        x = np.asarray(x, dtype=np.float64)
        b1, b2 = self.breakpoints
        left, mid, right = self.lines
        return np.where(
            x < b1, left.predict(x), np.where(x < b2, mid.predict(x), right.predict(x))
        )

    def max_discontinuity(self) -> float:
        """Largest jump between adjacent segments at the breakpoints.

        Zero (up to float error) after the T3 adjustment phase.
        """
        b1, b2 = self.breakpoints
        left, mid, right = self.lines
        return max(
            abs(float(left.predict(b1)) - float(mid.predict(b1))),
            abs(float(mid.predict(b2)) - float(right.predict(b2))),
        )


@dataclass(frozen=True)
class ThreeLineModel:
    """Result of the 3-line algorithm for one consumer."""

    band_upper: PiecewiseLines
    band_lower: PiecewiseLines
    heating_gradient: float
    cooling_gradient: float
    base_load: float
    temperature_range: tuple[float, float]

    def summary(self) -> dict[str, float]:
        """The three headline numbers, for reports and feedback apps."""
        return {
            "heating_gradient": self.heating_gradient,
            "cooling_gradient": self.cooling_gradient,
            "base_load": self.base_load,
        }


@dataclass
class PhaseTimes:
    """Accumulated wall-clock seconds per algorithm phase (paper Fig. 6)."""

    t1_quantiles: float = 0.0
    t2_regression: float = 0.0
    t3_adjust: float = 0.0

    def total(self) -> float:
        """Sum of the three phases."""
        return self.t1_quantiles + self.t2_regression + self.t3_adjust

    def add(self, other: "PhaseTimes") -> None:
        """Accumulate another consumer's phase times into this one."""
        self.t1_quantiles += other.t1_quantiles
        self.t2_regression += other.t2_regression
        self.t3_adjust += other.t3_adjust


@dataclass(frozen=True)
class ThreeLineConfig:
    """Tuning knobs of the 3-line algorithm."""

    #: Temperature bin width in degrees C for the percentile grouping.
    bin_width: float = 1.0
    #: Bins with fewer readings than this are dropped (too noisy to rank).
    min_bin_count: int = 3
    #: Minimum number of percentile points required per fitted segment.
    min_segment_points: int = 2
    #: Weight each percentile point by its bin's reading count during the
    #: regression.  Sample percentiles from well-populated bins are far less
    #: noisy, and hourly data correlates temperature with hour of day, so
    #: unweighted fits let sparse extreme-cold bins hijack a segment.  The
    #: ablation bench ``bench_ablation_threeline`` toggles this.
    weight_by_count: bool = True
    lower_percentile: float = LOWER_PERCENTILE
    upper_percentile: float = UPPER_PERCENTILE


@dataclass
class _BandPoints:
    """Percentile points for one band: sorted temps, values, bin counts."""

    temps: np.ndarray
    values: np.ndarray
    counts: np.ndarray


def temperature_bin_codes(
    temperature: np.ndarray, bin_width: float
) -> np.ndarray:
    """Integer temperature-bin code of each reading (phase T1 grouping key).

    The single definition shared by the loop kernel here, the batched
    lexsort grouping in :mod:`repro.batched.threeline`, and the dirty-bin
    tracking of :mod:`repro.streaming.threeline` — all three group by the
    same code, so a bin is the same set of readings on every path.
    """
    return np.round(temperature / bin_width).astype(np.int64)


def _percentile_points(
    consumption: np.ndarray, temperature: np.ndarray, config: ThreeLineConfig
) -> tuple[_BandPoints, _BandPoints]:
    """Phase T1: per-temperature-bin 10th and 90th percentile consumption."""
    bins = temperature_bin_codes(temperature, config.bin_width)
    order = np.argsort(bins, kind="stable")
    sorted_bins = bins[order]
    sorted_cons = consumption[order]
    # Boundaries between runs of equal bin values.
    boundaries = np.flatnonzero(np.diff(sorted_bins)) + 1
    starts = np.concatenate([[0], boundaries])
    ends = np.concatenate([boundaries, [sorted_bins.size]])

    temps: list[float] = []
    lower: list[float] = []
    upper: list[float] = []
    counts: list[int] = []
    for s, e in zip(starts, ends):
        if e - s < config.min_bin_count:
            continue
        group = np.sort(sorted_cons[s:e])
        temps.append(sorted_bins[s] * config.bin_width)
        lower.append(percentile_linear(group, config.lower_percentile))
        upper.append(percentile_linear(group, config.upper_percentile))
        counts.append(e - s)
    t = np.asarray(temps)
    c = np.asarray(counts, dtype=np.float64)
    return (
        _BandPoints(t, np.asarray(lower), c),
        _BandPoints(t, np.asarray(upper), c),
    )


def _best_breakpoints(
    points: _BandPoints, min_pts: int, weight_by_count: bool
) -> tuple[int, int, tuple[Line, Line, Line], float]:
    """Phase T2: search all breakpoint pairs, O(1) SSE per candidate."""
    n = points.temps.size
    if n < 3 * min_pts:
        raise InsufficientDataError(
            f"{n} percentile points cannot support three segments of >= {min_pts}"
        )
    weights = points.counts if weight_by_count else None
    ols = PrefixSumOLS(points.temps, points.values, weights)
    best: tuple[float, int, int] | None = None
    for i in range(min_pts, n - 2 * min_pts + 1):
        sse_left = ols.sse(0, i)
        for j in range(i + min_pts, n - min_pts + 1):
            total = sse_left + ols.sse(i, j) + ols.sse(j, n)
            if best is None or total < best[0] - 1e-15:
                best = (total, i, j)
    assert best is not None  # guaranteed by the range checks above
    total, i, j = best
    left, _ = ols.fit(0, i)
    mid, _ = ols.fit(i, j)
    right, _ = ols.fit(j, n)
    return i, j, (left, mid, right), total


def _make_continuous(
    lines: tuple[Line, Line, Line],
    points: _BandPoints,
    i: int,
    j: int,
) -> tuple[tuple[Line, Line, Line], tuple[float, float], bool]:
    """Phase T3: pick breakpoint x-values and force the lines to meet there.

    If adjacent lines intersect inside the gap between their segments, the
    intersection becomes the breakpoint and no adjustment is needed there.
    Otherwise the breakpoint is placed mid-gap and the *outer* line's
    intercept is shifted so it meets the middle line (the middle segment has
    the most support, so we preserve it — the paper says the lines may need
    to be "adjusted slightly").
    """
    left, mid, right = lines
    temps = points.temps
    adjusted = False

    def join(outer: Line, inner: Line, gap_lo: float, gap_hi: float) -> tuple[Line, float, bool]:
        cross = outer.intersection_x(inner)
        if cross is not None and gap_lo <= cross <= gap_hi:
            return outer, float(cross), False
        breakpoint_x = 0.5 * (gap_lo + gap_hi)
        target = float(inner.predict(breakpoint_x))
        fixed = Line(outer.slope, target - outer.slope * breakpoint_x)
        return fixed, breakpoint_x, True

    new_left, b1, adj1 = join(left, mid, float(temps[i - 1]), float(temps[i]))
    new_right, b2, adj2 = join(right, mid, float(temps[j - 1]), float(temps[j]))
    adjusted = adj1 or adj2
    return (new_left, mid, new_right), (b1, b2), adjusted


def fit_bands(
    temps: np.ndarray,
    lower_values: np.ndarray,
    upper_values: np.ndarray,
    counts: np.ndarray,
    config: ThreeLineConfig | None = None,
    phases: PhaseTimes | None = None,
) -> ThreeLineModel:
    """Phases T2+T3 of the 3-line algorithm, from percentile points.

    ``temps`` must be ascending; ``lower_values``/``upper_values`` are the
    10th/90th percentile consumption at each temperature and ``counts`` the
    reading count behind each point.  Engines that compute the percentile
    grouping in their own storage layer (the MADLib engine does it in SQL)
    call this directly; :func:`fit_three_lines` is T1 + this.
    """
    cfg = config or ThreeLineConfig()
    temps = np.asarray(temps, dtype=np.float64)
    if temps.size >= 2 and (np.diff(temps) <= 0).any():
        raise DataError("percentile points must have strictly ascending temps")
    lower_pts = _BandPoints(temps, np.asarray(lower_values, dtype=np.float64),
                            np.asarray(counts, dtype=np.float64))
    upper_pts = _BandPoints(temps, np.asarray(upper_values, dtype=np.float64),
                            np.asarray(counts, dtype=np.float64))

    tic = time.perf_counter()
    li, lj, l_lines, l_sse = _best_breakpoints(
        lower_pts, cfg.min_segment_points, cfg.weight_by_count
    )
    ui, uj, u_lines, u_sse = _best_breakpoints(
        upper_pts, cfg.min_segment_points, cfg.weight_by_count
    )
    t2 = time.perf_counter() - tic

    tic = time.perf_counter()
    l_lines, l_bps, l_adj = _make_continuous(l_lines, lower_pts, li, lj)
    u_lines, u_bps, u_adj = _make_continuous(u_lines, upper_pts, ui, uj)
    band_lower = PiecewiseLines(l_lines, l_bps, l_sse, l_adj)
    band_upper = PiecewiseLines(u_lines, u_bps, u_sse, u_adj)

    # Derived feedback quantities (paper Figure 1).  The heating gradient is
    # reported as kWh per degree of *cooling outdoors* (sign-flipped slope).
    heating_gradient = -band_upper.lines[0].slope
    cooling_gradient = band_upper.lines[2].slope
    t_lo = float(temps[0])
    t_hi = float(temps[-1])
    candidates = np.array(
        [t_lo, band_lower.breakpoints[0], band_lower.breakpoints[1], t_hi]
    )
    base_load = float(band_lower.predict(candidates).min())
    t3 = time.perf_counter() - tic

    if phases is not None:
        phases.add(PhaseTimes(0.0, t2, t3))

    return ThreeLineModel(
        band_upper=band_upper,
        band_lower=band_lower,
        heating_gradient=float(heating_gradient),
        cooling_gradient=float(cooling_gradient),
        base_load=base_load,
        temperature_range=(t_lo, t_hi),
    )


def fit_three_lines(
    consumption: np.ndarray,
    temperature: np.ndarray,
    config: ThreeLineConfig | None = None,
    phases: PhaseTimes | None = None,
) -> ThreeLineModel:
    """Run the full 3-line algorithm (T1+T2+T3) on one consumer.

    Raises :class:`~repro.exceptions.InsufficientDataError` when the
    temperature range is too narrow to support three segments per band.
    """
    cfg = config or ThreeLineConfig()
    consumption = np.asarray(consumption, dtype=np.float64)
    temperature = np.asarray(temperature, dtype=np.float64)
    if consumption.shape != temperature.shape or consumption.ndim != 1:
        raise DataError(
            f"consumption {consumption.shape} and temperature "
            f"{temperature.shape} must be equal-length 1-D series"
        )
    if np.isnan(consumption).any() or np.isnan(temperature).any():
        raise DataError("series contains NaN; impute before analysis")

    tic = time.perf_counter()
    lower_pts, upper_pts = _percentile_points(consumption, temperature, cfg)
    t1 = time.perf_counter() - tic
    if phases is not None:
        phases.add(PhaseTimes(t1, 0.0, 0.0))

    return fit_bands(
        lower_pts.temps,
        lower_pts.values,
        upper_pts.values,
        lower_pts.counts,
        cfg,
        phases,
    )


def three_lines_for_dataset(
    dataset: Dataset,
    config: ThreeLineConfig | None = None,
    phases: PhaseTimes | None = None,
) -> dict[str, ThreeLineModel]:
    """Task 2 over a whole dataset: consumer id -> 3-line model."""
    return {
        cid: fit_three_lines(
            dataset.consumption[i], dataset.temperature[i], config, phases
        )
        for i, cid in enumerate(dataset.consumer_ids)
    }
