"""Task 3 — periodic autoregression (PAR) daily profiles (paper Section 3.3).

The PAR algorithm of Espinoza et al. [13] / Ardakanian et al. [8] as the
paper specifies it: for each consumer and each hour of the day, fit an
auto-regressive model in which consumption at that hour is a linear
combination of the consumption at the same hour over the previous ``p`` days
(the paper uses ``p = 3``) and the outdoor temperature.  The output per
consumer is the *daily profile*: a vector of 24 expected consumption values
attributable to the occupants' habits alone, with the temperature-dependent
load removed (paper Figure 2).

Two temperature parameterizations are provided:

* ``"linear"`` (default, the paper's formulation) — a single temperature
  regressor; the temperature-independent level is evaluated at a reference
  comfort temperature ``t_ref``;
* ``"degree_day"`` — separate heating/cooling degree regressors
  ``max(0, t_heat - T)`` and ``max(0, T - t_cool)``, whose
  temperature-dependent load is zero inside the comfort band.  The data
  generator (Section 4) uses this mode because it disaggregates additive
  thermal load exactly.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.stats import ols_multi
from repro.exceptions import DataError, InsufficientDataError
from repro.timeseries.calendar import HOURS_PER_DAY, day_hour_matrix
from repro.timeseries.series import Dataset

_TEMPERATURE_MODES = ("linear", "degree_day")


@dataclass(frozen=True)
class HourModel:
    """Fitted AR model for one hour of day.

    ``coefficients`` is laid out as ``[intercept, lag_1..lag_p, temp...]``
    where the temperature tail is one coefficient in ``linear`` mode and two
    (heating, cooling) in ``degree_day`` mode.
    """

    hour: int
    coefficients: np.ndarray
    sse: float
    n_observations: int

    @property
    def intercept(self) -> float:
        """Constant term of the AR model."""
        return float(self.coefficients[0])

    def lag_coefficients(self, p: int) -> np.ndarray:
        """The ``p`` autoregressive coefficients."""
        return self.coefficients[1 : 1 + p]

    def temperature_coefficients(self, p: int) -> np.ndarray:
        """The temperature coefficient(s) — one or two values."""
        return self.coefficients[1 + p :]


@dataclass(frozen=True)
class ParModel:
    """PAR result for one consumer: 24 hour-models and the daily profile."""

    profile: np.ndarray
    hour_models: tuple[HourModel, ...]
    p: int
    temperature_mode: str
    #: Thermal parameterization used at fit time (needed for forecasting).
    config: "ParConfig | None" = None

    def __post_init__(self) -> None:
        if self.profile.shape != (HOURS_PER_DAY,):
            raise DataError(f"profile must have 24 values, got {self.profile.shape}")

    def total_sse(self) -> float:
        """Sum of squared errors across the 24 hour-models."""
        return float(sum(m.sse for m in self.hour_models))

    # Forecasting — the short-term load forecasting application the PAR
    # literature the paper draws on ([13], [15]) uses this model for.

    def _thermal_terms(self, temperature: np.ndarray) -> np.ndarray:
        cfg = self.config or ParConfig(
            p=self.p, temperature_mode=self.temperature_mode
        )
        return _temperature_columns(np.asarray(temperature, dtype=np.float64), cfg)

    def forecast_day(
        self, recent_days: np.ndarray, temperature: np.ndarray
    ) -> np.ndarray:
        """Predict the next day's 24 hourly readings.

        ``recent_days`` is the last ``p`` days of observed consumption as a
        ``(p, 24)`` matrix (oldest first); ``temperature`` is the next
        day's hourly forecast (24 values).
        """
        recent_days = np.asarray(recent_days, dtype=np.float64)
        temperature = np.asarray(temperature, dtype=np.float64)
        if recent_days.shape != (self.p, HOURS_PER_DAY):
            raise DataError(
                f"recent_days must be ({self.p}, 24), got {recent_days.shape}"
            )
        if temperature.shape != (HOURS_PER_DAY,):
            raise DataError(
                f"temperature must have 24 values, got {temperature.shape}"
            )
        thermal = self._thermal_terms(temperature)  # (24, n_temp_cols)
        out = np.empty(HOURS_PER_DAY)
        for h, model in enumerate(self.hour_models):
            lags = recent_days[::-1, h][: self.p]  # most recent day first
            out[h] = (
                model.intercept
                + float(model.lag_coefficients(self.p) @ lags)
                + float(model.temperature_coefficients(self.p) @ thermal[h])
            )
        return out

    def forecast(
        self, recent_days: np.ndarray, temperature: np.ndarray
    ) -> np.ndarray:
        """Multi-day forecast, feeding predictions back in as lags.

        ``temperature`` is ``(horizon, 24)``; returns ``(horizon, 24)``.
        """
        temperature = np.asarray(temperature, dtype=np.float64)
        if temperature.ndim != 2 or temperature.shape[1] != HOURS_PER_DAY:
            raise DataError(
                f"temperature must be (horizon, 24), got {temperature.shape}"
            )
        window = np.array(recent_days, dtype=np.float64, copy=True)
        horizon = temperature.shape[0]
        out = np.empty((horizon, HOURS_PER_DAY))
        for d in range(horizon):
            out[d] = self.forecast_day(window, temperature[d])
            window = np.vstack([window[1:], out[d]])
        return out


@dataclass(frozen=True)
class ParConfig:
    """Tuning knobs of the PAR algorithm."""

    p: int = 3
    temperature_mode: str = "linear"
    #: Reference comfort temperature for ``linear`` mode profiles (deg C).
    t_ref: float = 18.0
    #: Degree-day balance points for ``degree_day`` mode (deg C).
    t_heat: float = 15.0
    t_cool: float = 20.0

    def __post_init__(self) -> None:
        if self.p < 1:
            raise ValueError(f"AR order p must be >= 1, got {self.p}")
        if self.temperature_mode not in _TEMPERATURE_MODES:
            raise ValueError(
                f"temperature_mode must be one of {_TEMPERATURE_MODES}, "
                f"got {self.temperature_mode!r}"
            )


def temperature_columns(temps: np.ndarray, cfg: ParConfig) -> np.ndarray:
    """Temperature regressor column(s) for a vector of temperatures.

    The single definition of the design matrix's thermal tail, shared by
    the loop kernel here, forecasting, and the recursive-least-squares
    accumulator in :mod:`repro.streaming.par`.
    """
    if cfg.temperature_mode == "linear":
        return temps[:, None]
    heating = np.maximum(0.0, cfg.t_heat - temps)
    cooling = np.maximum(0.0, temps - cfg.t_cool)
    return np.column_stack([heating, cooling])


#: Backwards-compatible private alias (pre-streaming callers).
_temperature_columns = temperature_columns


def n_coefficients(cfg: ParConfig) -> int:
    """Number of design columns: intercept + p lags + thermal tail."""
    return 1 + cfg.p + (1 if cfg.temperature_mode == "linear" else 2)


def min_days_required(cfg: ParConfig) -> int:
    """Days of data needed before any hour-model is identifiable."""
    n_temp_cols = 1 if cfg.temperature_mode == "linear" else 2
    return cfg.p + 1 + cfg.p + n_temp_cols  # observations >= coefficients


def fit_par(
    consumption: np.ndarray,
    temperature: np.ndarray,
    config: ParConfig | None = None,
) -> ParModel:
    """Fit the PAR model and daily profile for one consumer.

    Requires at least ``p + k + 1`` days of data per hour (k = number of
    regressors) — in practice a handful of weeks; the benchmark uses a year.
    """
    cfg = config or ParConfig()
    consumption = np.asarray(consumption, dtype=np.float64)
    temperature = np.asarray(temperature, dtype=np.float64)
    if consumption.shape != temperature.shape or consumption.ndim != 1:
        raise DataError(
            f"consumption {consumption.shape} and temperature "
            f"{temperature.shape} must be equal-length 1-D series"
        )
    if np.isnan(consumption).any() or np.isnan(temperature).any():
        raise DataError("series contains NaN; impute before analysis")

    cons_by_day = day_hour_matrix(consumption)  # (days, 24)
    temp_by_day = day_hour_matrix(temperature)
    n_days = cons_by_day.shape[0]
    min_days = min_days_required(cfg)
    if n_days < min_days:
        raise InsufficientDataError(
            f"PAR with p={cfg.p} needs at least {min_days} days, got {n_days}"
        )

    profile = np.empty(HOURS_PER_DAY)
    hour_models: list[HourModel] = []
    for h in range(HOURS_PER_DAY):
        y_full = cons_by_day[:, h]
        t_full = temp_by_day[:, h]
        y = y_full[cfg.p :]
        lags = np.column_stack(
            [y_full[cfg.p - lag : n_days - lag] for lag in range(1, cfg.p + 1)]
        )
        temp_cols = _temperature_columns(t_full[cfg.p :], cfg)
        design = np.column_stack([np.ones(y.size), lags, temp_cols])
        coeffs, sse = ols_multi(design, y)
        hour_models.append(
            HourModel(hour=h, coefficients=coeffs, sse=sse, n_observations=y.size)
        )
        # Temperature-independent expected consumption at this hour: the
        # observed mean minus the modeled temperature-driven load.
        temp_coeffs = coeffs[1 + cfg.p :]
        if cfg.temperature_mode == "linear":
            thermal = float(temp_coeffs[0]) * (t_full[cfg.p :].mean() - cfg.t_ref)
        else:
            thermal = float(temp_cols.mean(axis=0) @ temp_coeffs)
        profile[h] = y.mean() - thermal

    return ParModel(
        profile=profile,
        hour_models=tuple(hour_models),
        p=cfg.p,
        temperature_mode=cfg.temperature_mode,
        config=cfg,
    )


def par_for_dataset(
    dataset: Dataset, config: ParConfig | None = None
) -> dict[str, ParModel]:
    """Task 3 over a whole dataset: consumer id -> PAR model."""
    return {
        cid: fit_par(dataset.consumption[i], dataset.temperature[i], config)
        for i, cid in enumerate(dataset.consumer_ids)
    }


def profiles_matrix(models: dict[str, ParModel]) -> tuple[list[str], np.ndarray]:
    """Stack PAR profiles into an ``(n, 24)`` matrix, preserving id order."""
    ids = list(models)
    return ids, np.stack([models[cid].profile for cid in ids])
