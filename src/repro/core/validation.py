"""Cross-engine result validation.

Every platform engine must produce the same analytical answers as the
reference kernels — the platforms differ in *how*, never in *what*.  These
helpers compare task outputs with float tolerances and similarity-specific
tie handling, and are used both by the test suite and by the harness's
``--validate`` mode.
"""

from __future__ import annotations

from typing import Any

import numpy as np

from repro.core.benchmark import Task
from repro.core.histogram import HistogramResult
from repro.core.par import ParModel
from repro.core.threeline import ThreeLineModel


class ValidationFailure(AssertionError):
    """Two engines disagreed on a benchmark answer."""


def _check_same_keys(a: dict, b: dict) -> None:
    if a.keys() != b.keys():
        only_a = sorted(set(a) - set(b))[:5]
        only_b = sorted(set(b) - set(a))[:5]
        raise ValidationFailure(
            f"consumer sets differ: only-left={only_a} only-right={only_b}"
        )


def _close(x: np.ndarray, y: np.ndarray, rtol: float, atol: float) -> bool:
    return bool(np.allclose(x, y, rtol=rtol, atol=atol))


def compare_histograms(
    a: dict[str, HistogramResult],
    b: dict[str, HistogramResult],
    rtol: float = 1e-9,
    atol: float = 1e-9,
) -> None:
    """Raise :class:`ValidationFailure` unless the histograms match."""
    _check_same_keys(a, b)
    for cid in a:
        ha, hb = a[cid], b[cid]
        if not _close(ha.edges, hb.edges, rtol, atol):
            raise ValidationFailure(f"{cid}: edges differ: {ha.edges} vs {hb.edges}")
        if not np.array_equal(ha.counts, hb.counts):
            raise ValidationFailure(
                f"{cid}: counts differ: {ha.counts} vs {hb.counts}"
            )


def compare_threeline(
    a: dict[str, ThreeLineModel],
    b: dict[str, ThreeLineModel],
    rtol: float = 1e-6,
    atol: float = 1e-8,
) -> None:
    """Raise :class:`ValidationFailure` unless the 3-line models match."""
    _check_same_keys(a, b)
    for cid in a:
        ma, mb = a[cid], b[cid]
        fields = ("heating_gradient", "cooling_gradient", "base_load")
        for name in fields:
            va, vb = getattr(ma, name), getattr(mb, name)
            if not np.isclose(va, vb, rtol=rtol, atol=atol):
                raise ValidationFailure(f"{cid}: {name} differs: {va} vs {vb}")
        for band in ("band_upper", "band_lower"):
            pa, pb = getattr(ma, band), getattr(mb, band)
            if not _close(
                np.array(pa.breakpoints), np.array(pb.breakpoints), rtol, atol
            ):
                raise ValidationFailure(
                    f"{cid}: {band} breakpoints differ: "
                    f"{pa.breakpoints} vs {pb.breakpoints}"
                )


def compare_par(
    a: dict[str, ParModel],
    b: dict[str, ParModel],
    rtol: float = 1e-6,
    atol: float = 1e-8,
) -> None:
    """Raise :class:`ValidationFailure` unless the PAR profiles match."""
    _check_same_keys(a, b)
    for cid in a:
        if not _close(a[cid].profile, b[cid].profile, rtol, atol):
            raise ValidationFailure(
                f"{cid}: profiles differ:\n{a[cid].profile}\nvs\n{b[cid].profile}"
            )


def compare_similarity(
    a: dict[str, list[tuple[str, float]]],
    b: dict[str, list[tuple[str, float]]],
    score_tol: float = 1e-9,
) -> None:
    """Raise :class:`ValidationFailure` unless the top-k lists match.

    Near-tied scores may legitimately order differently across engines, so
    neighbours whose scores are within ``score_tol`` of each other are
    treated as interchangeable: we compare the sorted score vectors and
    check that any neighbour-set difference involves only tied scores.
    """
    _check_same_keys(a, b)
    for cid in a:
        la, lb = a[cid], b[cid]
        if len(la) != len(lb):
            raise ValidationFailure(
                f"{cid}: result lengths differ: {len(la)} vs {len(lb)}"
            )
        scores_a = np.array([s for _, s in la])
        scores_b = np.array([s for _, s in lb])
        if not np.allclose(scores_a, scores_b, atol=score_tol, rtol=0):
            raise ValidationFailure(
                f"{cid}: score vectors differ:\n{scores_a}\nvs\n{scores_b}"
            )
        set_a = {n for n, _ in la}
        set_b = {n for n, _ in lb}
        if set_a != set_b:
            # Differences must be explainable by ties at the cut-off score.
            cutoff = min(scores_a.min(), scores_b.min()) + score_tol
            strict_a = {n for n, s in la if s > cutoff}
            strict_b = {n for n, s in lb if s > cutoff}
            if strict_a != strict_b:
                raise ValidationFailure(
                    f"{cid}: neighbour sets differ beyond ties: "
                    f"{sorted(set_a ^ set_b)}"
                )


def compare_task_results(task: Task, a: dict[str, Any], b: dict[str, Any]) -> None:
    """Dispatch to the task-appropriate comparison."""
    if task is Task.HISTOGRAM:
        compare_histograms(a, b)
    elif task is Task.THREELINE:
        compare_threeline(a, b)
    elif task is Task.PAR:
        compare_par(a, b)
    elif task is Task.SIMILARITY:
        compare_similarity(a, b)
    else:
        raise ValueError(f"unknown task: {task!r}")


# Bit-level identity ---------------------------------------------------------


def _identical(a: Any, b: Any, path: str) -> None:
    import dataclasses

    if type(a) is not type(b):
        raise ValidationFailure(
            f"{path}: types differ: {type(a).__name__} vs {type(b).__name__}"
        )
    if isinstance(a, dict):
        if a.keys() != b.keys():
            raise ValidationFailure(f"{path}: key sets differ")
        for key in a:
            _identical(a[key], b[key], f"{path}.{key}")
    elif isinstance(a, (list, tuple)):
        if len(a) != len(b):
            raise ValidationFailure(
                f"{path}: lengths differ: {len(a)} vs {len(b)}"
            )
        for i, (x, y) in enumerate(zip(a, b)):
            _identical(x, y, f"{path}[{i}]")
    elif isinstance(a, np.ndarray):
        if a.shape != b.shape or a.dtype != b.dtype:
            raise ValidationFailure(
                f"{path}: array shape/dtype differ: "
                f"{a.shape}/{a.dtype} vs {b.shape}/{b.dtype}"
            )
        ac, bc = np.ascontiguousarray(a), np.ascontiguousarray(b)
        if a.dtype == np.float64:
            # Compare raw bit patterns: distinguishes -0.0 from 0.0 and
            # matches NaN payloads, which float == never would.
            same = np.array_equal(ac.view(np.uint64), bc.view(np.uint64))
        else:
            same = np.array_equal(ac, bc)
        if not same:
            raise ValidationFailure(f"{path}: array values differ")
    elif isinstance(a, float):
        if np.float64(a).view(np.uint64) != np.float64(b).view(np.uint64):
            raise ValidationFailure(f"{path}: floats differ: {a!r} vs {b!r}")
    elif dataclasses.is_dataclass(a) and not isinstance(a, type):
        for f in dataclasses.fields(a):
            if f.name.startswith("_"):
                continue
            _identical(
                getattr(a, f.name), getattr(b, f.name), f"{path}.{f.name}"
            )
    elif a != b:
        raise ValidationFailure(f"{path}: values differ: {a!r} vs {b!r}")


def assert_identical_task_results(
    task: Task, a: dict[str, Any], b: dict[str, Any]
) -> None:
    """Raise :class:`ValidationFailure` unless two task results are
    **bit-identical** — every float compared by raw bit pattern, every
    array by dtype, shape, and contents, recursively through dataclasses.

    This is the storage-layer contract (v1 memmap vs v2 partitioned store
    must not change a single bit), far stricter than the tolerance-based
    cross-engine comparisons above.
    """
    _identical(a, b, task.value)
