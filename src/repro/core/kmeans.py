"""k-means clustering (from scratch) for daily activity profiles.

The data generator (paper Section 4, Figure 3) clusters the PAR daily
profiles of the seed consumers with k-means and draws activity loads from
cluster centroids.  Implemented here with k-means++ seeding and Lloyd
iterations; no external ML library so that every engine and the generator
share one deterministic implementation.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.exceptions import DataError


@dataclass(frozen=True)
class KMeansResult:
    """Outcome of a k-means run."""

    centroids: np.ndarray
    labels: np.ndarray
    inertia: float
    n_iterations: int
    converged: bool

    @property
    def k(self) -> int:
        """Number of clusters."""
        return int(self.centroids.shape[0])

    def members(self, cluster: int) -> np.ndarray:
        """Row indices assigned to ``cluster``."""
        if not 0 <= cluster < self.k:
            raise ValueError(f"cluster {cluster} out of range 0..{self.k - 1}")
        return np.flatnonzero(self.labels == cluster)

    def cluster_sizes(self) -> np.ndarray:
        """Number of members per cluster."""
        return np.bincount(self.labels, minlength=self.k)


def _plus_plus_init(
    points: np.ndarray, k: int, rng: np.random.Generator
) -> np.ndarray:
    """k-means++ seeding: spread initial centroids by squared distance."""
    n = points.shape[0]
    centroids = np.empty((k, points.shape[1]))
    first = rng.integers(n)
    centroids[0] = points[first]
    closest_sq = ((points - centroids[0]) ** 2).sum(axis=1)
    for c in range(1, k):
        total = closest_sq.sum()
        if total <= 0.0:
            # All points coincide with chosen centroids; fill uniformly.
            centroids[c:] = points[rng.integers(n, size=k - c)]
            break
        probs = closest_sq / total
        idx = rng.choice(n, p=probs)
        centroids[c] = points[idx]
        dist_sq = ((points - centroids[c]) ** 2).sum(axis=1)
        np.minimum(closest_sq, dist_sq, out=closest_sq)
    return centroids


def _assign(points: np.ndarray, centroids: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
    """Labels and squared distance to the nearest centroid for each point."""
    # (n, k) squared distances via the expansion ||p||^2 - 2 p.c + ||c||^2.
    p_sq = (points**2).sum(axis=1)[:, None]
    c_sq = (centroids**2).sum(axis=1)[None, :]
    d = p_sq - 2.0 * points @ centroids.T + c_sq
    np.maximum(d, 0.0, out=d)
    labels = d.argmin(axis=1)
    return labels, d[np.arange(points.shape[0]), labels]


def kmeans(
    points: np.ndarray,
    k: int,
    max_iterations: int = 100,
    tolerance: float = 1e-6,
    seed: int | np.random.Generator = 0,
) -> KMeansResult:
    """Cluster ``points`` (rows) into ``k`` clusters.

    Deterministic for a given integer ``seed``.  Empty clusters are reseeded
    to the point currently farthest from its centroid, so every cluster in
    the result is non-empty whenever ``k <= n``.
    """
    points = np.asarray(points, dtype=np.float64)
    if points.ndim != 2 or points.shape[0] == 0:
        raise DataError(f"points must be a non-empty 2-D matrix, got {points.shape}")
    n = points.shape[0]
    if not 1 <= k <= n:
        raise ValueError(f"k must be in [1, {n}], got {k}")
    if np.isnan(points).any():
        raise DataError("points contain NaN")
    rng = seed if isinstance(seed, np.random.Generator) else np.random.default_rng(seed)

    centroids = _plus_plus_init(points, k, rng)
    labels = np.zeros(n, dtype=np.int64)
    converged = False
    iteration = 0
    for iteration in range(1, max_iterations + 1):
        labels, dist_sq = _assign(points, centroids)
        new_centroids = np.empty_like(centroids)
        for c in range(k):
            mask = labels == c
            if mask.any():
                new_centroids[c] = points[mask].mean(axis=0)
            else:
                # Reseed an empty cluster to the worst-served point.
                worst = int(dist_sq.argmax())
                new_centroids[c] = points[worst]
                dist_sq[worst] = 0.0
        shift = float(np.sqrt(((new_centroids - centroids) ** 2).sum(axis=1)).max())
        centroids = new_centroids
        if shift <= tolerance:
            converged = True
            break
    labels, dist_sq = _assign(points, centroids)
    return KMeansResult(
        centroids=centroids,
        labels=labels,
        inertia=float(dist_sq.sum()),
        n_iterations=iteration,
        converged=converged,
    )
