"""Task 1 — consumption histograms (paper Section 3.1).

For each consumer, compute the distribution of hourly consumption as an
equi-width histogram with a fixed number of buckets (the benchmark specifies
ten).  The bucket range spans the consumer's own min..max consumption, so the
histogram describes *that* consumer's variability.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.exceptions import DataError
from repro.timeseries.series import Dataset


@dataclass(frozen=True)
class HistogramResult:
    """An equi-width histogram: ``len(edges) == len(counts) + 1``.

    ``counts[i]`` is the number of readings in ``[edges[i], edges[i+1])``,
    with the final bucket closed on the right (numpy convention).
    """

    edges: np.ndarray
    counts: np.ndarray

    def __post_init__(self) -> None:
        if self.edges.shape[0] != self.counts.shape[0] + 1:
            raise DataError(
                f"{self.edges.shape[0]} edges for {self.counts.shape[0]} buckets"
            )

    @property
    def n_buckets(self) -> int:
        """Number of buckets."""
        return int(self.counts.shape[0])

    @property
    def total(self) -> int:
        """Total number of readings counted."""
        return int(self.counts.sum())

    def bucket_widths(self) -> np.ndarray:
        """Width of every bucket (they differ for equi-depth histograms)."""
        return np.diff(self.edges)

    def bucket_width(self) -> float:
        """Common width of the buckets of an equi-width histogram.

        Raises :class:`~repro.exceptions.DataError` when the edges are not
        (approximately) equally spaced — an equi-depth histogram has no
        single bucket width; use :meth:`bucket_widths` for those.
        """
        widths = self.bucket_widths()
        first = float(widths[0])
        if not np.allclose(widths, first, rtol=1e-9, atol=0.0):
            raise DataError(
                "buckets are not equi-width (widths range "
                f"{widths.min():g}..{widths.max():g}); use bucket_widths()"
            )
        return first


def effective_range(lo: float, hi: float, n_buckets: int) -> tuple[float, float]:
    """The histogram range actually used for data spanning ``[lo, hi]``.

    Degenerate ranges (a constant series, or a spread below float
    resolution for this bucket count) are widened to a unit range centred
    on the data, matching ``np.histogram``'s behaviour for equal bounds.
    This is the single definition shared by the batch kernel below, the
    whole-matrix kernel in :mod:`repro.batched.histogram` (vectorized
    form), and the incremental kernel in :mod:`repro.streaming.histogram`
    — the bucket edges any of them derive from the same min/max are
    therefore bit-identical.
    """
    if hi <= lo or (hi - lo) / n_buckets == 0.0:
        return lo - 0.5, hi + 0.5
    return lo, hi


def equi_width_histogram(values: np.ndarray, n_buckets: int = 10) -> HistogramResult:
    """Equi-width histogram of one consumer's hourly consumption.

    Every reading lands in exactly one bucket (the top edge is inclusive),
    so ``result.total == len(values)``.  A constant series degenerates to a
    single occupied bucket over a unit-width range centred on the value.
    """
    if n_buckets < 1:
        raise ValueError(f"n_buckets must be >= 1, got {n_buckets}")
    values = np.asarray(values, dtype=np.float64)
    if values.ndim != 1 or values.size == 0:
        raise DataError(f"expected a non-empty 1-D series, got shape {values.shape}")
    if np.isnan(values).any():
        raise DataError("series contains NaN; impute before analysis")
    lo, hi = effective_range(float(values.min()), float(values.max()), n_buckets)
    counts, edges = np.histogram(values, bins=n_buckets, range=(lo, hi))
    return HistogramResult(edges=edges, counts=counts.astype(np.int64))


def equi_depth_histogram(values: np.ndarray, n_buckets: int = 10) -> HistogramResult:
    """Equi-depth histogram: bucket edges at consumption quantiles.

    The paper specifies equi-width for the benchmark "for concreteness ...
    (rather than equi-depth)"; the equi-depth variant is provided for
    completeness since it is the alternative the paper weighs.  Buckets
    hold (approximately) equal reading counts; edges are the
    ``i/n_buckets`` quantiles, so heavily repeated values can still make
    counts uneven (standard equi-depth behaviour).
    """
    if n_buckets < 1:
        raise ValueError(f"n_buckets must be >= 1, got {n_buckets}")
    values = np.asarray(values, dtype=np.float64)
    if values.ndim != 1 or values.size == 0:
        raise DataError(f"expected a non-empty 1-D series, got shape {values.shape}")
    if np.isnan(values).any():
        raise DataError("series contains NaN; impute before analysis")
    quantiles = np.quantile(values, np.linspace(0.0, 1.0, n_buckets + 1))
    if quantiles[0] >= quantiles[-1]:
        return equi_width_histogram(values, n_buckets)
    # Merge duplicate edges (heavy ties), then count with numpy semantics.
    edges = quantiles.copy()
    for i in range(1, edges.size):
        if edges[i] <= edges[i - 1]:
            edges[i] = np.nextafter(edges[i - 1], np.inf)
    counts, edges = np.histogram(values, bins=edges)
    return HistogramResult(edges=edges, counts=counts.astype(np.int64))


def histograms_for_dataset(
    dataset: Dataset, n_buckets: int = 10
) -> dict[str, HistogramResult]:
    """Task 1 over a whole dataset: consumer id -> histogram."""
    return {
        cid: equi_width_histogram(dataset.consumption[i], n_buckets)
        for i, cid in enumerate(dataset.consumer_ids)
    }
