"""Shared statistical kernels: OLS lines and O(1)-per-segment fitting.

The 3-line algorithm searches over every pair of breakpoints and must fit a
least-squares line to each candidate segment; :class:`PrefixSumOLS`
precomputes prefix sums of x, y, x**2, x*y, y**2 so that any contiguous
segment's slope, intercept and sum of squared errors come out in O(1).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.exceptions import InsufficientDataError


@dataclass(frozen=True)
class Line:
    """A fitted line ``y = slope * x + intercept``."""

    slope: float
    intercept: float

    def predict(self, x: float | np.ndarray) -> float | np.ndarray:
        """Evaluate the line at ``x``."""
        return self.slope * x + self.intercept

    def intersection_x(self, other: "Line") -> float | None:
        """x coordinate where this line crosses ``other``, or None if parallel."""
        denom = self.slope - other.slope
        if abs(denom) < 1e-12:
            return None
        return (other.intercept - self.intercept) / denom


def ols_line(x: np.ndarray, y: np.ndarray) -> tuple[Line, float]:
    """Least-squares line through ``(x, y)`` and its sum of squared errors.

    With a single point, returns the horizontal line through it (SSE 0).
    Degenerate x (all equal) also yields a horizontal line through the mean.
    """
    x = np.asarray(x, dtype=np.float64)
    y = np.asarray(y, dtype=np.float64)
    n = x.size
    if n == 0:
        raise InsufficientDataError("cannot fit a line to zero points")
    if n == 1:
        return Line(0.0, float(y[0])), 0.0
    xm, ym = x.mean(), y.mean()
    sxx = float(((x - xm) ** 2).sum())
    if sxx < 1e-12:
        resid = y - ym
        return Line(0.0, float(ym)), float((resid**2).sum())
    sxy = float(((x - xm) * (y - ym)).sum())
    slope = sxy / sxx
    intercept = ym - slope * xm
    syy = float(((y - ym) ** 2).sum())
    sse = max(0.0, syy - slope * sxy)
    return Line(slope, intercept), sse


class PrefixSumOLS:
    """O(1) (weighted) least-squares fits over contiguous point segments.

    Points are taken in the order given (the 3-line algorithm sorts them by
    temperature first).  ``fit(i, j)`` fits points ``i..j-1``.  Optional
    per-point ``weights`` give a weighted fit; the 3-line algorithm weights
    each percentile point by its temperature bin's reading count, since the
    variance of a sample percentile shrinks with the sample size.
    """

    def __init__(
        self, x: np.ndarray, y: np.ndarray, weights: np.ndarray | None = None
    ) -> None:
        x = np.asarray(x, dtype=np.float64)
        y = np.asarray(y, dtype=np.float64)
        if x.shape != y.shape or x.ndim != 1:
            raise ValueError("x and y must be 1-D arrays of equal length")
        if weights is None:
            w = np.ones_like(x)
        else:
            w = np.asarray(weights, dtype=np.float64)
            if w.shape != x.shape:
                raise ValueError("weights must match x in shape")
            if (w <= 0).any():
                raise ValueError("weights must be strictly positive")
        self.n = x.size
        zero = np.zeros(1)
        self._sw = np.concatenate([zero, np.cumsum(w)])
        self._sx = np.concatenate([zero, np.cumsum(w * x)])
        self._sy = np.concatenate([zero, np.cumsum(w * y)])
        self._sxx = np.concatenate([zero, np.cumsum(w * x * x)])
        self._sxy = np.concatenate([zero, np.cumsum(w * x * y)])
        self._syy = np.concatenate([zero, np.cumsum(w * y * y)])

    def fit(self, i: int, j: int) -> tuple[Line, float]:
        """Fit points ``[i, j)``; requires ``0 <= i < j <= n``."""
        if not 0 <= i < j <= self.n:
            raise ValueError(f"invalid segment [{i}, {j}) of {self.n} points")
        sw = self._sw[j] - self._sw[i]
        sx = self._sx[j] - self._sx[i]
        sy = self._sy[j] - self._sy[i]
        sxx = self._sxx[j] - self._sxx[i]
        sxy = self._sxy[j] - self._sxy[i]
        syy = self._syy[j] - self._syy[i]
        if j - i == 1:
            return Line(0.0, float(sy / sw)), 0.0
        varx = sxx - sx * sx / sw
        covxy = sxy - sx * sy / sw
        vary = syy - sy * sy / sw
        if varx < 1e-12:
            return Line(0.0, float(sy / sw)), float(max(0.0, vary))
        slope = covxy / varx
        intercept = (sy - slope * sx) / sw
        sse = max(0.0, vary - slope * covxy)
        return Line(float(slope), float(intercept)), float(sse)

    def sse(self, i: int, j: int) -> float:
        """Sum of squared errors of the best line over points ``[i, j)``."""
        return self.fit(i, j)[1]


def percentile_linear(sorted_values: np.ndarray, q: float) -> float:
    """q-th percentile (0..100) with linear interpolation, from sorted input.

    Matches ``numpy.percentile(..., method="linear")``; implemented here so
    the from-scratch engines (System C, Spark) have a library-free kernel
    that provably agrees with the reference.
    """
    n = sorted_values.size
    if n == 0:
        raise InsufficientDataError("percentile of empty array")
    if not 0.0 <= q <= 100.0:
        raise ValueError(f"percentile must be in [0, 100], got {q}")
    if n == 1:
        return float(sorted_values[0])
    rank = (q / 100.0) * (n - 1)
    lo = int(np.floor(rank))
    hi = min(lo + 1, n - 1)
    frac = rank - lo
    return float(sorted_values[lo] * (1 - frac) + sorted_values[hi] * frac)


def ols_multi(design: np.ndarray, y: np.ndarray) -> tuple[np.ndarray, float]:
    """Multiple linear regression: coefficients and SSE via lstsq.

    ``design`` is ``(n, k)`` (include a ones column for the intercept).
    """
    design = np.asarray(design, dtype=np.float64)
    y = np.asarray(y, dtype=np.float64)
    if design.ndim != 2 or design.shape[0] != y.shape[0]:
        raise ValueError(
            f"design {design.shape} incompatible with y {y.shape}"
        )
    if design.shape[0] < design.shape[1]:
        raise InsufficientDataError(
            f"{design.shape[0]} observations for {design.shape[1]} coefficients"
        )
    coeffs, _, _, _ = np.linalg.lstsq(design, y, rcond=None)
    resid = y - design @ coeffs
    return coeffs, float((resid**2).sum())


def gaussian_elimination_solve(a: np.ndarray, b: np.ndarray) -> np.ndarray:
    """Solve ``a @ x = b`` by Gaussian elimination with partial pivoting.

    This is the "implemented from scratch in the platform's procedural
    language" path used by the System C engine (the paper had to hand-write
    its statistical operators there).  Kept separate from numpy's solver so
    tests can verify the two agree.
    """
    a = np.array(a, dtype=np.float64, copy=True)
    b = np.array(b, dtype=np.float64, copy=True)
    n = a.shape[0]
    if a.shape != (n, n) or b.shape != (n,):
        raise ValueError(f"incompatible shapes {a.shape} and {b.shape}")
    for col in range(n):
        pivot = col + int(np.argmax(np.abs(a[col:, col])))
        if abs(a[pivot, col]) < 1e-12:
            raise np.linalg.LinAlgError("singular normal-equations matrix")
        if pivot != col:
            a[[col, pivot]] = a[[pivot, col]]
            b[[col, pivot]] = b[[pivot, col]]
        inv = 1.0 / a[col, col]
        for row in range(col + 1, n):
            factor = a[row, col] * inv
            if factor != 0.0:
                a[row, col:] -= factor * a[col, col:]
                b[row] -= factor * b[col]
    x = np.zeros(n)
    for row in range(n - 1, -1, -1):
        x[row] = (b[row] - a[row, row + 1 :] @ x[row + 1 :]) / a[row, row]
    return x
