"""The realistic smart-meter data generator (paper Section 4, Figure 3).

Pipeline, exactly as the paper describes:

1. **Pre-processing** (once, on the seed data set): run the PAR algorithm to
   get each seed consumer's daily activity profile; cluster the profiles
   with k-means; run the 3-line algorithm and record each consumer's heating
   and cooling gradients.
2. **Synthesis** (per new consumer): randomly select a profile cluster and
   take its *centroid* as the hourly activity load; randomly select an
   individual consumer *from that cluster* and take their heating/cooling
   gradients; then each hourly reading is::

       activity[hour] + thermal(gradients, temperature[t]) + N(0, sigma)

   where ``thermal`` multiplies the heating gradient by degrees below the
   heating balance point and the cooling gradient by degrees above the
   cooling balance point.

The generated consumer therefore mixes the daily habits of one group with
the thermal envelope of one member — "a realistic new consumer whose
electricity usage combines the characteristics of multiple existing
consumers" — plus white noise.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.core.kmeans import KMeansResult, kmeans
from repro.core.par import ParConfig, par_for_dataset, profiles_matrix
from repro.core.threeline import ThreeLineConfig, three_lines_for_dataset
from repro.exceptions import DataError
from repro.timeseries.calendar import HOURS_PER_DAY
from repro.timeseries.series import Dataset


@dataclass(frozen=True)
class GeneratorConfig:
    """Knobs of the data generator."""

    #: Number of k-means clusters over daily activity profiles.
    n_clusters: int = 8
    #: Standard deviation of the Gaussian white-noise component (kWh).
    noise_sigma: float = 0.05
    #: Balance temperatures for re-aggregating thermal load (deg C).
    t_heat: float = 15.0
    t_cool: float = 20.0
    #: Generated readings are floored at this value (meters read >= 0).
    floor_kwh: float = 0.0
    par: ParConfig = field(
        default_factory=lambda: ParConfig(temperature_mode="degree_day")
    )
    threeline: ThreeLineConfig = field(default_factory=ThreeLineConfig)
    seed: int = 0


@dataclass(frozen=True)
class SeedProfile:
    """What the generator learned about one seed consumer."""

    consumer_id: str
    cluster: int
    heating_gradient: float
    cooling_gradient: float


class SmartMeterGenerator:
    """Fit on a seed data set once, then synthesize arbitrarily many consumers.

    Use :meth:`fit` to build a generator; :meth:`generate` is deterministic
    given the configured seed and may be called repeatedly (each call
    continues the random stream, so successive calls give fresh consumers).
    """

    def __init__(
        self,
        config: GeneratorConfig,
        clustering: KMeansResult,
        profiles: np.ndarray,
        seed_profiles: list[SeedProfile],
    ) -> None:
        self.config = config
        self.clustering = clustering
        self.profiles = profiles
        self.seed_profiles = seed_profiles
        self._members_by_cluster = [
            [i for i, sp in enumerate(seed_profiles) if sp.cluster == c]
            for c in range(clustering.k)
        ]
        self._rng = np.random.default_rng(config.seed)
        self._generated = 0

    @classmethod
    def fit(
        cls, seed_dataset: Dataset, config: GeneratorConfig | None = None
    ) -> "SmartMeterGenerator":
        """Run the pre-processing step of Figure 3 on a seed data set."""
        cfg = config or GeneratorConfig()
        if seed_dataset.n_consumers < cfg.n_clusters:
            raise DataError(
                f"seed has {seed_dataset.n_consumers} consumers but "
                f"{cfg.n_clusters} clusters were requested"
            )
        par_models = par_for_dataset(seed_dataset, cfg.par)
        ids, profiles = profiles_matrix(par_models)
        clustering = kmeans(profiles, cfg.n_clusters, seed=cfg.seed)
        threeline_models = three_lines_for_dataset(seed_dataset, cfg.threeline)

        seed_profiles = [
            SeedProfile(
                consumer_id=cid,
                cluster=int(clustering.labels[i]),
                # Gradients describe *additional* load per degree; negative
                # fitted slopes mean no thermal response, clamp at zero.
                heating_gradient=max(0.0, threeline_models[cid].heating_gradient),
                cooling_gradient=max(0.0, threeline_models[cid].cooling_gradient),
            )
            for i, cid in enumerate(ids)
        ]
        return cls(cfg, clustering, profiles, seed_profiles)

    @property
    def n_clusters(self) -> int:
        """Number of activity-profile clusters available."""
        return self.clustering.k

    def generate(
        self,
        n_consumers: int,
        temperature: np.ndarray,
        id_prefix: str = "syn",
        name: str = "synthetic",
    ) -> Dataset:
        """Synthesize ``n_consumers`` new series against ``temperature``.

        ``temperature`` is the regional hourly series every generated
        consumer is paired with (the paper used the southern-Ontario series
        of its seed city); its length must be a whole number of days.
        """
        if n_consumers < 1:
            raise ValueError(f"n_consumers must be >= 1, got {n_consumers}")
        temperature = np.asarray(temperature, dtype=np.float64)
        if temperature.ndim != 1 or temperature.size % HOURS_PER_DAY != 0:
            raise DataError(
                "temperature must be a 1-D series covering whole days, got "
                f"shape {temperature.shape}"
            )
        cfg = self.config
        hours = np.arange(temperature.size) % HOURS_PER_DAY
        heating_dd = np.maximum(0.0, cfg.t_heat - temperature)
        cooling_dd = np.maximum(0.0, temperature - cfg.t_cool)

        consumption = np.empty((n_consumers, temperature.size))
        ids: list[str] = []
        for row in range(n_consumers):
            cluster = int(self._rng.integers(self.n_clusters))
            activity = self.clustering.centroids[cluster][hours]
            members = self._members_by_cluster[cluster]
            donor = self.seed_profiles[members[self._rng.integers(len(members))]]
            thermal = (
                donor.heating_gradient * heating_dd
                + donor.cooling_gradient * cooling_dd
            )
            noise = self._rng.normal(0.0, cfg.noise_sigma, temperature.size)
            consumption[row] = np.maximum(cfg.floor_kwh, activity + thermal + noise)
            ids.append(f"{id_prefix}{self._generated + row:07d}")
        self._generated += n_consumers

        return Dataset(
            consumer_ids=ids,
            consumption=consumption,
            temperature=np.broadcast_to(temperature, consumption.shape).copy(),
            name=name,
        )
