"""Benchmark definition: the four tasks, their fixed parameters, and the
reference runner (paper Section 3).

The benchmark fixes: 10 equi-width histogram buckets, AR order p = 3,
similarity k = 10, hourly data covering a year.  ``run_task_reference``
executes a task with the reference numpy kernels; every platform engine's
output is validated against it (:mod:`repro.core.validation`).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Any

from repro.core.histogram import histograms_for_dataset
from repro.core.par import ParConfig, par_for_dataset
from repro.core.similarity import similarity_for_dataset
from repro.core.threeline import ThreeLineConfig, three_lines_for_dataset
from repro.timeseries.series import Dataset

#: Benchmark constants fixed by the paper.
NUM_BUCKETS = 10
AR_ORDER = 3
TOP_K = 10


class Task(str, enum.Enum):
    """The four benchmark tasks of Section 3."""

    HISTOGRAM = "histogram"
    THREELINE = "threeline"
    PAR = "par"
    SIMILARITY = "similarity"

    @property
    def title(self) -> str:
        """Display name used in figures (matches the paper's labels)."""
        return {
            Task.HISTOGRAM: "Histogram",
            Task.THREELINE: "3-line",
            Task.PAR: "PAR",
            Task.SIMILARITY: "Similarity",
        }[self]


#: Tasks that are embarrassingly parallel across consumers (paper 3.5);
#: similarity is quadratic and needs all-pairs access.
PER_CONSUMER_TASKS = (Task.HISTOGRAM, Task.THREELINE, Task.PAR)

#: Kernel dispatch strategies for the per-consumer tasks
#: (:mod:`repro.batched.dispatch`): ``loop`` = the reference
#: per-consumer Python loop, ``batched`` = the whole-matrix kernels of
#: :mod:`repro.batched`, ``auto`` = batched above a consumer-count
#: threshold.  Similarity ignores the knob (it is already whole-matrix).
KERNEL_STRATEGIES = ("loop", "batched", "auto")


@dataclass(frozen=True)
class BenchmarkSpec:
    """A concrete benchmark configuration (defaults = the paper's).

    ``n_jobs`` selects process-parallel execution of the tasks
    (:mod:`repro.parallel`): 1 = serial (the default), N > 1 = N worker
    processes, 0 / None-like negative conventions follow
    :func:`repro.parallel.executor.effective_n_jobs`.  Results are
    bit-identical for every value — it is purely a performance knob.

    ``kernel`` selects the per-consumer task implementation (one of
    :data:`KERNEL_STRATEGIES`): the reference loop, the whole-matrix
    batched kernels of :mod:`repro.batched`, or automatic selection by
    dataset size.  Like ``n_jobs`` it is a performance knob: batched
    results are bit-identical for histogram/3-line and within the
    documented tolerance of :mod:`repro.batched.par` for PAR.  The two
    knobs compose — with both set, workers run the batched kernel on
    their consumer chunk.

    The resilience knobs (``max_retries``, ``task_timeout_s``,
    ``on_error``) govern the supervised execution layer
    (:mod:`repro.resilience`): retry budget for crashed/timed-out pool
    chunks, per-chunk timeout, and whether a per-consumer ``DataError``
    raises (default) or quarantines the consumer into the run report.
    ``None`` means "inherit the process-wide default policy" (see
    :func:`repro.resilience.policy.get_default_policy`), which is how
    the CLI flags reach figure runners that build their own specs.

    ``on_dirty`` is the data-plane counterpart (:mod:`repro.ingest`):
    how engines and readers treat dirty input files — ``strict`` raises
    (default behaviour), ``repair`` fixes and logs, ``quarantine`` drops
    dirty consumers and proceeds on the clean subset.  ``None`` inherits
    the process-wide ingest default (the ``--on-dirty`` CLI flag, see
    :func:`repro.ingest.policy.get_default_ingest_config`).
    """

    n_buckets: int = NUM_BUCKETS
    top_k: int = TOP_K
    par: ParConfig = field(default_factory=lambda: ParConfig(p=AR_ORDER))
    threeline: ThreeLineConfig = field(default_factory=ThreeLineConfig)
    n_jobs: int = 1
    kernel: str = "loop"
    max_retries: int | None = None
    task_timeout_s: float | None = None
    on_error: str | None = None
    on_dirty: str | None = None

    def __post_init__(self) -> None:
        if self.kernel not in KERNEL_STRATEGIES:
            raise ValueError(
                f"unknown kernel strategy {self.kernel!r}; "
                f"expected one of {KERNEL_STRATEGIES}"
            )
        if self.max_retries is not None and self.max_retries < 0:
            raise ValueError(
                f"max_retries must be >= 0, got {self.max_retries}"
            )
        if self.task_timeout_s is not None and self.task_timeout_s <= 0.0:
            raise ValueError(
                f"task_timeout_s must be > 0, got {self.task_timeout_s}"
            )
        if self.on_error not in (None, "raise", "quarantine"):
            raise ValueError(
                f"unknown on_error mode {self.on_error!r}; "
                f"expected 'raise' or 'quarantine'"
            )
        if self.on_dirty not in (None, "strict", "repair", "quarantine"):
            raise ValueError(
                f"unknown on_dirty policy {self.on_dirty!r}; "
                f"expected 'strict', 'repair' or 'quarantine'"
            )


def run_task_reference(
    dataset: Dataset, task: Task, spec: BenchmarkSpec | None = None, report=None
) -> dict[str, Any]:
    """Run one benchmark task with the reference kernels.

    Returns a dict keyed by consumer id whose values depend on the task:
    :class:`~repro.core.histogram.HistogramResult`,
    :class:`~repro.core.threeline.ThreeLineModel`,
    :class:`~repro.core.par.ParModel`, or a list of ``(neighbour_id, score)``
    pairs for similarity.

    With ``spec.n_jobs != 1`` the task fans out over a process pool
    (:func:`repro.parallel.run_task_parallel`) — same kernels, same
    (bit-identical) output.  With ``spec.kernel`` resolving to
    ``batched`` the per-consumer tasks run the whole-matrix kernels of
    :mod:`repro.batched` instead of the loop (composing with ``n_jobs``:
    each worker runs the batched kernel on its chunk).

    ``report`` (an :class:`~repro.resilience.report.ExecutionReport`)
    collects retry counters and — when the spec's resolved ``on_error``
    mode is ``"quarantine"`` — the consumers whose kernels raised
    ``DataError`` instead of producing a result; those consumers are
    omitted from the returned dict.
    """
    spec = spec or BenchmarkSpec()
    if spec.kernel != "loop" and task in PER_CONSUMER_TASKS:
        # Lazy import: repro.batched depends on this module.
        from repro.batched.dispatch import run_batched_task, wants_batched

        if wants_batched(spec.kernel, dataset.n_consumers):
            return run_batched_task(dataset, task, spec, report=report)
    if spec.n_jobs != 1:
        # Lazy import: repro.parallel depends on this module.
        from repro.parallel import run_task_parallel

        return run_task_parallel(dataset, task, spec, report=report)
    # Lazy import: repro.resilience sits above repro.core in the layering.
    from repro.resilience.policy import policy_for_spec

    if task in PER_CONSUMER_TASKS and policy_for_spec(spec).quarantine:
        # Quarantine needs the guarded row loop; run_task_parallel with
        # n_jobs=1 takes the serial in-process path with the same
        # reference kernels — bit-identical for the healthy consumers.
        from repro.parallel import run_task_parallel

        return run_task_parallel(dataset, task, spec, report=report)
    if task is Task.HISTOGRAM:
        return histograms_for_dataset(dataset, spec.n_buckets)
    if task is Task.THREELINE:
        return three_lines_for_dataset(dataset, spec.threeline)
    if task is Task.PAR:
        return par_for_dataset(dataset, spec.par)
    if task is Task.SIMILARITY:
        return similarity_for_dataset(dataset, spec.top_k)
    raise ValueError(f"unknown task: {task!r}")
