"""Task 4 — top-k cosine similarity search (paper Section 3.4).

For each of the ``n`` input time series, find the ``k`` most similar other
series under cosine similarity ``X . Y / (||X|| * ||Y||)`` (the paper uses
k = 10).  The task is quadratic in ``n`` and is the heaviest workload in the
benchmark.

Two implementations are provided and tested to agree:

* :func:`top_k_similar` — vectorized: normalize rows once, one matrix
  product, then a partial sort per row (what the Matlab-analogue engine
  uses);
* :func:`top_k_similar_pairwise` — a streaming per-pair loop (the shape the
  paper hand-wrote on every platform, and the reference for the
  from-scratch engines).
"""

from __future__ import annotations

import numpy as np

from repro.exceptions import DataError

#: A similarity result: per consumer, the k (neighbour id, score) pairs in
#: descending score order (ties broken by ascending neighbour position).
Neighbours = list[tuple[str, float]]

#: Row-block size of the blocked reference computation.  Fixed (not tuned
#: per call) so that the serial reference and the process-parallel path of
#: :mod:`repro.parallel` issue the *same* BLAS calls and stay bit-identical.
SIMILARITY_BLOCK_ROWS = 64


def clip_scores(scores: np.ndarray) -> np.ndarray:
    """Clip cosine scores to the valid ``[-1, 1]`` range, in place if possible.

    Squaring subnormal-range values underflows, which can push a computed
    ratio (including self-similarity) marginally past 1.  Every similarity
    implementation in the package — reference and engines — funnels its raw
    scores through this one helper so they cannot disagree on the boundary.
    """
    return np.clip(scores, -1.0, 1.0)


def normalize_rows(matrix: np.ndarray) -> np.ndarray:
    """Rows scaled to unit L2 norm; all-zero rows stay all-zero."""
    matrix = np.asarray(matrix, dtype=np.float64)
    if matrix.ndim != 2:
        raise DataError(f"expected a 2-D matrix, got shape {matrix.shape}")
    norms = np.linalg.norm(matrix, axis=1)
    safe = np.where(norms > 0.0, norms, 1.0)
    normalized = matrix / safe[:, None]
    normalized[norms == 0.0] = 0.0
    return normalized


def cosine_similarity_matrix(matrix: np.ndarray) -> np.ndarray:
    """Dense ``(n, n)`` cosine similarity of the rows of ``matrix``.

    All-zero rows have undefined cosine similarity; by convention their
    similarity to everything (including themselves) is 0.
    """
    normalized = normalize_rows(matrix)
    return clip_scores(normalized @ normalized.T)


def cosine_similarity_block(
    normalized: np.ndarray, lo: int, hi: int
) -> np.ndarray:
    """Rows ``lo:hi`` of the cosine similarity matrix, from normalized rows.

    ``normalized`` must come from :func:`normalize_rows`.  This is the unit
    of work of the blocked similarity computation: both the serial reference
    (:func:`top_k_similar`) and the process-parallel row-range path compute
    similarity block by block with this function, so their results agree
    bit for bit for any distribution of blocks over workers.
    """
    if not 0 <= lo < hi <= normalized.shape[0]:
        raise DataError(
            f"block [{lo}, {hi}) out of range for {normalized.shape[0]} rows"
        )
    return clip_scores(normalized[lo:hi] @ normalized.T)


def rank_row(scores: np.ndarray, row: int, k: int) -> list[tuple[int, float]]:
    """Top-k (index, score) of one row, excluding ``row`` itself."""
    scores = scores.copy()
    scores[row] = -np.inf
    k_eff = min(k, scores.size - 1)
    if k_eff <= 0:
        return []
    # argpartition then a stable exact sort of the candidate block.
    candidates = np.argpartition(-scores, k_eff - 1)[:k_eff]
    order = np.lexsort((candidates, -scores[candidates]))
    top = candidates[order]
    return [(int(i), float(scores[i])) for i in top]


def top_k_similar(
    matrix: np.ndarray, ids: list[str], k: int = 10
) -> dict[str, Neighbours]:
    """Vectorized top-k cosine similarity search over all rows.

    Computed in fixed-size row blocks (:data:`SIMILARITY_BLOCK_ROWS`):
    normalize rows once, then one matrix product per block and a partial
    sort per row.  Blocking bounds the dense score buffer at
    ``block_rows x n`` instead of ``n x n`` and makes the computation
    decomposable over processes without changing a single bit of output.
    """
    matrix = np.asarray(matrix, dtype=np.float64)
    if matrix.shape[0] != len(ids):
        raise DataError(f"{matrix.shape[0]} rows but {len(ids)} ids")
    if k < 1:
        raise ValueError(f"k must be >= 1, got {k}")
    normalized = normalize_rows(matrix)
    n = len(ids)
    results: dict[str, Neighbours] = {}
    for lo in range(0, n, SIMILARITY_BLOCK_ROWS):
        hi = min(n, lo + SIMILARITY_BLOCK_ROWS)
        sims = cosine_similarity_block(normalized, lo, hi)
        for row in range(lo, hi):
            results[ids[row]] = [
                (ids[i], score) for i, score in rank_row(sims[row - lo], row, k)
            ]
    return results


def cosine_similarity_pair(x: np.ndarray, y: np.ndarray) -> float:
    """Cosine similarity of two vectors, 0 when either has zero norm.

    Clipped to [-1, 1]: sums of squares underflow for subnormal-range
    inputs, which can otherwise push the ratio marginally out of range.
    """
    dot = float(np.dot(x, y))
    nx = float(np.dot(x, x)) ** 0.5
    ny = float(np.dot(y, y)) ** 0.5
    if nx == 0.0 or ny == 0.0:
        return 0.0
    return float(clip_scores(np.float64(dot / (nx * ny))))


def top_k_similar_pairwise(
    matrix: np.ndarray, ids: list[str], k: int = 10
) -> dict[str, Neighbours]:
    """Per-pair loop implementation — the paper's hand-written formulation.

    Semantically identical to :func:`top_k_similar`; kept loop-shaped (one
    dot product per ordered pair) as the reference for the engines that
    implement similarity as UDFs or MapReduce jobs.
    """
    matrix = np.asarray(matrix, dtype=np.float64)
    if matrix.shape[0] != len(ids):
        raise DataError(f"{matrix.shape[0]} rows but {len(ids)} ids")
    if k < 1:
        raise ValueError(f"k must be >= 1, got {k}")
    n = matrix.shape[0]
    results: dict[str, Neighbours] = {}
    for row in range(n):
        scores = np.empty(n)
        for other in range(n):
            scores[other] = cosine_similarity_pair(matrix[row], matrix[other])
        results[ids[row]] = [
            (ids[i], score) for i, score in rank_row(scores, row, k)
        ]
    return results


def similarity_for_dataset(dataset, k: int = 10) -> dict[str, Neighbours]:
    """Task 4 over a whole dataset (vectorized reference path)."""
    return top_k_similar(dataset.consumption, dataset.consumer_ids, k)
