"""Task 3 via stacked normal equations: all ``n x 24`` hour-models at once.

The per-consumer loop solves ``24`` least-squares systems per consumer
with ``np.linalg.lstsq`` — an SVD per hour-model, thousands of tiny
LAPACK calls.  This module assembles the Gram matrices (``X'X``, ``X'y``)
of *every* hour-model of *every* consumer with one einsum each and solves
them with a single batched ``np.linalg.solve``.

Equivalence contract (documented tolerance — not bit-identity):

* the design matrices are assembled from the same slices as the
  reference, so the *systems* are exact;
* solving the normal equations instead of the SVD least-squares changes
  the rounding path.  For a system with condition number ``cond(X'X)``
  the two answers agree to roughly ``eps * cond(X'X)`` relative error.
  The Gram matrices are symmetric positive semi-definite, so their
  condition number is the eigenvalue ratio from one batched
  ``np.linalg.eigvalsh``; hour-models whose condition exceeds
  :data:`BATCHED_SOLVE_MAX_CONDITION` (or that are rank-deficient —
  e.g. constant temperature makes the temperature column collinear with
  the intercept, and all-zero consumption zeroes the lag columns) fall
  back to the reference per-model ``lstsq`` on the identical design
  matrix;
* the guaranteed (and tested — ``tests/test_batched.py``) agreement with
  the loop reference is ``rtol=PAR_COEFF_RTOL, atol=PAR_COEFF_ATOL`` on
  coefficients and ``rtol=PAR_PROFILE_RTOL, atol=PAR_PROFILE_ATOL`` on
  profiles and SSE.
"""

from __future__ import annotations

import numpy as np

from repro.core.par import HourModel, ParConfig, ParModel
from repro.exceptions import DataError, InsufficientDataError
from repro.timeseries.calendar import HOURS_PER_DAY

#: Hour-models whose normal-equations condition number (the eigenvalue
#: ratio of the symmetric Gram matrix) exceeds this fall back to the
#: reference per-model lstsq.  eps * 1e8 ~ 2e-8 bounds the relative
#: solve error well inside the documented tolerances below.
BATCHED_SOLVE_MAX_CONDITION = 1e8

#: Documented agreement between batched and loop PAR (see module docstring).
PAR_COEFF_RTOL = 1e-6
PAR_COEFF_ATOL = 1e-9
PAR_PROFILE_RTOL = 1e-6
PAR_PROFILE_ATOL = 1e-8

#: Cap on the design-tensor footprint per internal batch, in float64
#: elements (~100 MB); consumers are processed in slices of this budget.
_DESIGN_ELEMENT_BUDGET = 12_000_000


def _batched_par_chunk(
    cons_dh: np.ndarray, temp_dh: np.ndarray, cfg: ParConfig
) -> list[ParModel]:
    """PAR for one consumer slice; inputs are ``(m, n_days, 24)``."""
    m, n_days, _ = cons_dh.shape
    p = cfg.p
    n_obs = n_days - p
    n_temp = 1 if cfg.temperature_mode == "linear" else 2
    k = 1 + p + n_temp

    # Assemble the design stack directly in its final
    # (consumer, hour, observation, column) layout — each column is one
    # strided write, with no concatenate pass and no transpose copy.
    # The columns match the reference design exactly: intercept, then
    # lags 1..p, then the temperature column(s).
    X4 = np.empty((m, HOURS_PER_DAY, n_obs, k))
    X4[:, :, :, 0] = 1.0
    for lag in range(1, p + 1):
        X4[:, :, :, lag] = cons_dh[:, p - lag : n_days - lag, :].transpose(0, 2, 1)
    t_hour = temp_dh[:, p:, :].transpose(0, 2, 1)  # (m, 24, n_obs) view
    if cfg.temperature_mode == "linear":
        X4[:, :, :, 1 + p] = t_hour
    else:
        np.maximum(0.0, cfg.t_heat - t_hour, out=X4[:, :, :, 1 + p])
        np.maximum(0.0, t_hour - cfg.t_cool, out=X4[:, :, :, 2 + p])

    # One system per (consumer, hour): flatten to a (m * 24,) stack.
    X = X4.reshape(-1, n_obs, k)
    Y = np.ascontiguousarray(
        cons_dh[:, p:, :].transpose(0, 2, 1)
    ).reshape(-1, n_obs)
    Xt = X.transpose(0, 2, 1)
    xtx = Xt @ X  # batched BLAS matmul
    xty = (Xt @ Y[:, :, None])[:, :, 0]

    # Condition screening via the symmetric eigendecomposition — the
    # Gram matrices are symmetric positive semi-definite, so the
    # eigenvalue ratio IS the 2-norm condition number, at a fraction of
    # the generic SVD-based ``np.linalg.cond`` cost.  Rank-deficient
    # systems (smallest eigenvalue <= 0 up to rounding) must take the
    # lstsq fallback: a consistent singular system has infinitely many
    # exact solutions and only lstsq picks the same minimum-norm one as
    # the reference.
    with np.errstate(all="ignore"):
        eigs = np.linalg.eigvalsh(xtx)
    smallest, largest = eigs[:, 0], eigs[:, -1]
    solvable = (smallest > 0) & (
        largest < smallest * BATCHED_SOLVE_MAX_CONDITION
    )
    coeffs = np.zeros((X.shape[0], k))
    if solvable.any():
        try:
            coeffs[solvable] = np.linalg.solve(
                xtx[solvable], xty[solvable][:, :, None]
            )[:, :, 0]
        except np.linalg.LinAlgError:  # borderline pivot: keep correctness
            solvable = np.zeros_like(solvable)
    for idx in np.flatnonzero(~solvable):
        coeffs[idx] = np.linalg.lstsq(X[idx], Y[idx], rcond=None)[0]

    resid = Y - (X @ coeffs[:, :, None])[:, :, 0]
    sse = (resid**2).sum(axis=1)

    temp_coeffs = coeffs[:, 1 + p :]
    if cfg.temperature_mode == "linear":
        t_mean = t_hour.mean(axis=2).reshape(-1)  # per-(consumer, hour)
        thermal = temp_coeffs[:, 0] * (t_mean - cfg.t_ref)
    else:
        tc_mean = X4[:, :, :, 1 + p :].mean(axis=2).reshape(-1, n_temp)
        thermal = (tc_mean * temp_coeffs).sum(axis=1)
    profile = (Y.mean(axis=1) - thermal).reshape(m, HOURS_PER_DAY)

    coeffs = coeffs.reshape(m, HOURS_PER_DAY, k)
    sse = sse.reshape(m, HOURS_PER_DAY)
    models: list[ParModel] = []
    for i in range(m):
        hour_models = tuple(
            HourModel(
                hour=h,
                coefficients=coeffs[i, h],
                sse=float(sse[i, h]),
                n_observations=n_obs,
            )
            for h in range(HOURS_PER_DAY)
        )
        models.append(
            ParModel(
                profile=profile[i],
                hour_models=hour_models,
                p=p,
                temperature_mode=cfg.temperature_mode,
                config=cfg,
            )
        )
    return models


def batched_par(
    consumption: np.ndarray,
    temperature: np.ndarray,
    config: ParConfig | None = None,
) -> list[ParModel]:
    """Task 3 for all consumers at once; one model per matrix row.

    Agrees with calling :func:`~repro.core.par.fit_par` on each row
    within the documented tolerances (module docstring); error behaviour
    (NaN input, too few days, length not a whole number of days) matches
    the loop reference.
    """
    cfg = config or ParConfig()
    consumption = np.asarray(consumption, dtype=np.float64)
    temperature = np.asarray(temperature, dtype=np.float64)
    if consumption.shape != temperature.shape or consumption.ndim != 2:
        raise DataError(
            f"consumption {consumption.shape} and temperature "
            f"{temperature.shape} must be equal-shape (n, hours) matrices"
        )
    if np.isnan(consumption).any() or np.isnan(temperature).any():
        raise DataError("series contains NaN; impute before analysis")
    n, hours = consumption.shape
    if hours % HOURS_PER_DAY != 0:
        raise ValueError(
            f"series length {hours} is not a whole number of days"
        )
    n_days = hours // HOURS_PER_DAY
    n_temp_cols = 1 if cfg.temperature_mode == "linear" else 2
    min_days = cfg.p + 1 + cfg.p + n_temp_cols
    if n_days < min_days:
        raise InsufficientDataError(
            f"PAR with p={cfg.p} needs at least {min_days} days, got {n_days}"
        )

    cons_dh = consumption.reshape(n, n_days, HOURS_PER_DAY)
    temp_dh = temperature.reshape(n, n_days, HOURS_PER_DAY)
    k = 1 + cfg.p + n_temp_cols
    chunk = max(
        1, _DESIGN_ELEMENT_BUDGET // (HOURS_PER_DAY * max(1, n_days - cfg.p) * k)
    )
    models: list[ParModel] = []
    for lo in range(0, n, chunk):
        hi = min(n, lo + chunk)
        models.extend(_batched_par_chunk(cons_dh[lo:hi], temp_dh[lo:hi], cfg))
    return models
