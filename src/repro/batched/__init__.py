"""repro.batched — whole-matrix implementations of the per-consumer tasks.

The reference runner and the process pool both execute the three
per-consumer tasks (histogram, 3-line, PAR) as a Python-level loop that
calls a numpy kernel once per consumer — thousands of tiny numpy calls
whose interpreter overhead dwarfs the arithmetic.  This package processes
*all n consumers in a handful of numpy calls*, the same
algorithm-vs-platform-efficiency gap the paper measures between Matlab's
vectorized built-ins and hand-written UDFs (Section 5.3):

* :mod:`repro.batched.histogram` — one ``np.bincount`` over row-offset
  bucket codes computed from the full ``(n, hours)`` consumption matrix,
  replicating numpy's own bucket-index algorithm so the counts are
  *bit-identical* to the per-consumer loop;
* :mod:`repro.batched.threeline` — phase T1 (per-temperature-bin
  percentiles) via a single lexsort of (consumer, bin, value) keys and
  vectorized segment percentiles; phases T2/T3 run *stacked* across all
  consumers (ragged point lists padded dense, prefix-sum SSE over every
  breakpoint pair at once, with a per-consumer sequential-scan fallback
  on near-ties); bit-identical to the loop reference;
* :mod:`repro.batched.par` — the ``n x 24`` hour-model normal equations
  assembled with einsum and solved with one batched
  ``np.linalg.solve``, falling back to the reference per-model ``lstsq``
  for ill-conditioned systems; agrees with the loop within a documented,
  tested tolerance (see :data:`repro.batched.par.PAR_PROFILE_RTOL`);
* :mod:`repro.batched.dispatch` — the kernel dispatch layer
  (``loop | batched | auto``) that composes with the
  :mod:`repro.parallel` process pool: workers run the batched kernel on
  their consumer chunk.

Select the batched kernels through ``BenchmarkSpec(kernel="batched")``,
the ``smartbench --kernel`` CLI flag, or by calling
:func:`~repro.batched.dispatch.run_batched_task` directly.
"""

from repro.batched.dispatch import (
    AUTO_BATCH_MIN_CONSUMERS,
    resolve_kernel,
    run_batched_task,
    wants_batched,
)
from repro.batched.histogram import batched_histograms
from repro.batched.par import batched_par
from repro.batched.threeline import batched_fit_bands, batched_three_lines

__all__ = [
    "AUTO_BATCH_MIN_CONSUMERS",
    "batched_fit_bands",
    "batched_histograms",
    "batched_par",
    "batched_three_lines",
    "resolve_kernel",
    "run_batched_task",
    "wants_batched",
]
