"""Task 1 over the whole ``(n, hours)`` matrix in a handful of numpy calls.

The per-consumer loop calls ``np.histogram`` once per consumer; for
thousands of consumers the per-call overhead (argument checking, edge
construction, a fresh output array) is a large share of each call.  This
module buckets every consumer's readings with one short vectorized
pipeline per cache-sized block of rows and a single ``np.bincount`` over
row-offset bucket codes.

Bit-identity contract: results are *bit-identical* to
:func:`repro.core.histogram.equi_width_histogram` applied row by row.
The fast path does not replicate numpy's arithmetic op for op — it uses
a cheaper multiply-only position (``value * scale - shift``, truncate)
— so bit-identity is preserved by a guard: any reading whose fractional
bucket position lands within a per-row safety margin of a boundary is
re-bucketed with numpy's exact algorithm (scaled index, truncate, then
the +-1 correction against the true edge values) and the counts are
repaired.  Away from the margin the cheap code and numpy's code provably
agree, because both equal true interval membership; inside the margin
the exact recomputation decides.  Rows whose margin is too wide to be
selective (extreme offsets where ``value * scale - shift`` cancels
catastrophically) fall back to the reference kernel wholesale.  The
tests in ``tests/test_batched.py`` enforce exact equality of edges and
counts.
"""

from __future__ import annotations

import numpy as np

from repro.core.histogram import HistogramResult, equi_width_histogram
from repro.exceptions import DataError

#: Rows per pipeline block: keeps the position/code scratch buffers
#: (block x hours doubles) inside the CPU caches for typical year-long
#: hourly series.
_BLOCK_ROWS = 64

#: Safety margin multiplier: the fast position differs from numpy's
#: scaled index by a few ULPs of the operands; 64 machine epsilons of
#: slack is orders of magnitude beyond the rounding bound while still
#: flagging only a handful of readings per row (typically the row min
#: and max, whose positions are exactly 0 and ``n_buckets``).
_MARGIN_EPS = 64 * np.finfo(np.float64).eps

#: Rows whose safety margin exceeds this fraction of a bucket stop being
#: selective (most readings would be double-checked) and fall back to
#: the per-row reference kernel instead.
_MARGIN_LIMIT = 0.25


def numpy_bucket_codes(
    values: np.ndarray,
    lo: np.ndarray,
    hi: np.ndarray,
    edges: np.ndarray,
    n_buckets: int,
) -> np.ndarray:
    """numpy's exact bucket index for flat ``values`` with per-value ranges.

    Replicates the ``np.histogram`` uniform-bins fast path step for step:
    scaled-index truncation (divide by the span first, then scale by the
    bucket count — the operation order matters), then the +-1 correction
    against the true edge values, decrement before increment.  ``lo`` and
    ``hi`` give each value's range and ``edges`` the matching
    ``(len(values), n_buckets + 1)`` edge rows.
    """
    f_idx = ((values - lo) / (hi - lo)) * n_buckets
    codes = f_idx.astype(np.intp)
    codes[codes == n_buckets] -= 1
    rows = np.arange(values.size)
    codes[values < edges[rows, codes]] -= 1
    codes[(values >= edges[rows, codes + 1]) & (codes != n_buckets - 1)] += 1
    return codes


def batched_histograms(
    consumption: np.ndarray, n_buckets: int = 10
) -> list[HistogramResult]:
    """Task 1 for all consumers at once; one result per matrix row.

    Bit-identical to calling
    :func:`~repro.core.histogram.equi_width_histogram` on each row,
    including the degenerate-range handling for constant rows.
    """
    if n_buckets < 1:
        raise ValueError(f"n_buckets must be >= 1, got {n_buckets}")
    values = np.asarray(consumption, dtype=np.float64)
    if values.ndim != 2 or values.size == 0:
        raise DataError(
            f"expected a non-empty (n, hours) matrix, got shape {values.shape}"
        )
    if np.isnan(values).any():
        raise DataError("series contains NaN; impute before analysis")
    n, hours = values.shape

    lo = values.min(axis=1)
    hi = values.max(axis=1)
    # Degenerate ranges (constant rows, or a spread below float
    # resolution for this bucket count) get the same unit-range centring
    # the per-consumer kernel applies.
    degenerate = (hi <= lo) | ((hi - lo) / n_buckets == 0.0)
    lo = np.where(degenerate, lo - 0.5, lo)
    hi = np.where(degenerate, hi + 0.5, hi)
    # Per-row edges: np.linspace with array endpoints applies the same
    # elementwise arithmetic as the scalar call inside np.histogram, so
    # the edge matrix matches the per-row edges bit for bit.
    edges = np.linspace(lo, hi, n_buckets + 1, axis=1)

    scale = n_buckets / (hi - lo)
    shift = lo * scale
    # Position-space margin around each boundary inside which the cheap
    # position is not trusted; grows with the cancellation in
    # ``value * scale - shift`` for rows offset far from zero.
    margin = _MARGIN_EPS * (n_buckets + scale * np.maximum(np.abs(lo), np.abs(hi)))
    slow = margin >= _MARGIN_LIMIT
    counts = np.empty((n, n_buckets), dtype=np.int64)

    block = min(_BLOCK_ROWS, n)
    pos = np.empty((block, hours))
    frac = np.empty((block, hours))
    # int32 halves the code-buffer traffic; positions of valid rows lie
    # in [-1, n_buckets + 1], far inside its range.
    codes = np.empty((block, hours), dtype=np.int32)
    near_lo = np.empty((block, hours), dtype=bool)
    near_hi = np.empty((block, hours), dtype=bool)
    local_offsets = (np.arange(block, dtype=np.int32) * n_buckets)[:, None]
    upper = 1.0 - margin
    fix_rows: list[np.ndarray] = []
    fix_vals: list[np.ndarray] = []
    fix_old: list[np.ndarray] = []
    for start in range(0, n, block):
        end = min(n, start + block)
        m = end - start
        v = values[start:end]
        p, f, c = pos[:m], frac[:m], codes[:m]
        suspect = near_lo[:m]
        np.multiply(v, scale[start:end, None], out=p)
        np.subtract(p, shift[start:end, None], out=p)
        c[:] = p  # truncate toward zero
        np.subtract(p, c, out=f)  # fractional position (negative if p < 0)
        np.less(f, margin[start:end, None], out=suspect)
        np.greater(f, upper[start:end, None], out=near_hi[:m])
        np.logical_or(suspect, near_hi[:m], out=suspect)
        np.clip(c, 0, n_buckets - 1, out=c)
        # Every row flags at least its min and max (their positions are
        # exactly 0 and n_buckets), so gather unconditionally.
        srows, scols = np.nonzero(suspect)
        fix_rows.append(start + srows)
        fix_vals.append(v[srows, scols])
        fix_old.append(c[srows, scols].astype(np.intp))
        np.add(c, local_offsets[:m], out=c)
        counts[start:end] = np.bincount(
            c.ravel(), minlength=m * n_buckets
        ).reshape(m, n_buckets)

    # Exact fixup: re-bucket every flagged reading with numpy's own
    # algorithm and repair the counts where the cheap code differed.
    if fix_rows:
        rows = np.concatenate(fix_rows)
        vals = np.concatenate(fix_vals)
        old = np.concatenate(fix_old)
        keep = ~slow[rows]  # slow rows are recounted wholesale below
        rows, vals, old = rows[keep], vals[keep], old[keep]
        if rows.size:
            new = numpy_bucket_codes(vals, lo[rows], hi[rows], edges[rows], n_buckets)
            moved = new != old
            if moved.any():
                np.subtract.at(counts, (rows[moved], old[moved]), 1)
                np.add.at(counts, (rows[moved], new[moved]), 1)

    for r in np.flatnonzero(slow):
        ref = equi_width_histogram(values[r], n_buckets)
        counts[r] = ref.counts
        edges[r] = ref.edges

    return [
        HistogramResult(edges=edges[i], counts=counts[i]) for i in range(n)
    ]
