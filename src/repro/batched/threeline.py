"""Task 2 fully batched: T1 lexsort grouping, T2/T3 stacked least squares.

Phase T1 of the 3-line algorithm groups each consumer's readings by
rounded temperature and takes the 10th/90th percentile of every group.
The per-consumer loop pays an ``argsort`` plus a Python-level loop over
temperature bins *per consumer*; this module does the grouping for the
whole ``(n, hours)`` matrix with a single lexsort of
``(consumer, temperature-bin, consumption)`` keys, after which every
(consumer, bin) group is a contiguous, value-sorted segment.  Segment
percentiles then come out of four gather operations (the
``np.add.reduceat`` trick, applied to order statistics instead of sums).

Phases T2 (breakpoint search) and T3 (continuity adjustment) are batched
the way :mod:`repro.batched.par` stacks normal equations.  Each
consumer's ~50 percentile points are padded into a ragged-to-dense
``(n, max_points)`` representation; per-row prefix sums of
``w, wx, wy, wx^2, wxy, wy^2`` replicate :class:`repro.core.stats.
PrefixSumOLS` expression for expression, so the SSE of *every* candidate
segment of *every* consumer comes out of a handful of whole-matrix
gathers.  The O(points^2) breakpoint-pair search then collapses to one
``argmin`` per consumer over a shared candidate grid (invalid pairs
masked to ``+inf`` per consumer, so padding cannot change any answer).

Equivalence contract — **bit-identical** to per-consumer ``fit_bands``:

* every arithmetic expression (segment SSE, line fits, the T3
  intersection/adjustment, the derived gradients and base load) is the
  reference expression applied elementwise, so each consumer's floats
  go through the identical IEEE-754 operation sequence;
* the reference selects breakpoints with a sequential ``total <
  best - 1e-15`` scan, which ``argmin`` reproduces exactly whenever a
  single candidate attains the minimum within that tolerance.  The rare
  consumers with near-ties (degenerate data — e.g. an all-zero
  consumption row makes every candidate's SSE exactly 0.0) fall back to
  the literal sequential scan over the precomputed totals, which costs
  O(candidates) trivial comparisons and preserves the reference's
  first-wins tie behaviour bit for bit.  ``tests/test_batched.py``
  exercises both paths.
"""

from __future__ import annotations

import time

import numpy as np

from repro.core.threeline import (
    PhaseTimes,
    ThreeLineConfig,
    ThreeLineModel,
    fit_bands,
    temperature_bin_codes,
)
from repro.core.stats import Line
from repro.core.threeline import PiecewiseLines
from repro.exceptions import DataError, InsufficientDataError

#: Cap on the (consumer-chunk x candidate-pair) footprint of the T2
#: search, in float64 elements (~64 MB across the handful of
#: temporaries); consumers are processed in slices of this budget.
_PAIR_ELEMENT_BUDGET = 8_000_000


def _segment_percentile(
    sorted_values: np.ndarray,
    starts: np.ndarray,
    counts: np.ndarray,
    q: float,
) -> np.ndarray:
    """Linear-interpolation percentile of each value-sorted segment.

    Replicates :func:`repro.core.stats.percentile_linear` expression for
    expression so the results are bit-identical.
    """
    rank = (q / 100.0) * (counts - 1)
    lo = np.floor(rank).astype(np.int64)
    hi = np.minimum(lo + 1, counts - 1)
    frac = rank - lo
    v_lo = sorted_values[starts + lo]
    v_hi = sorted_values[starts + hi]
    return v_lo * (1 - frac) + v_hi * frac


def batched_percentile_points(
    consumption: np.ndarray,
    temperature: np.ndarray,
    config: ThreeLineConfig,
) -> tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
    """Phase T1 for every consumer at once.

    Returns ``(row_splits, temps, lower, upper, counts)``: the last four
    arrays hold every kept percentile point, ordered by (consumer,
    temperature); consumer ``i``'s points are the slice
    ``row_splits[i]:row_splits[i + 1]``.  Point values are bit-identical
    to the reference per-consumer ``_percentile_points``.
    """
    n, hours = consumption.shape
    bins = temperature_bin_codes(temperature, config.bin_width)
    # One composite integer key per reading — (consumer, bin) — so a
    # two-key lexsort with the consumption value as tie-breaker leaves
    # every (consumer, bin) group contiguous *and* value-sorted.
    bin_lo = int(bins.min())
    span = int(bins.max()) - bin_lo + 1
    composite = (np.arange(n, dtype=np.int64) * span)[:, None] + (bins - bin_lo)
    order = np.lexsort((consumption.ravel(), composite.ravel()))
    sorted_comp = composite.ravel()[order]
    sorted_cons = consumption.ravel()[order]

    boundaries = np.flatnonzero(np.diff(sorted_comp)) + 1
    starts = np.concatenate([[0], boundaries])
    ends = np.concatenate([boundaries, [sorted_comp.size]])
    counts = ends - starts

    keep = counts >= config.min_bin_count
    starts, counts = starts[keep], counts[keep]
    seg_comp = sorted_comp[starts]
    seg_row = seg_comp // span
    seg_bin = seg_comp - seg_row * span + bin_lo

    temps = seg_bin * config.bin_width
    lower = _segment_percentile(
        sorted_cons, starts, counts, config.lower_percentile
    )
    upper = _segment_percentile(
        sorted_cons, starts, counts, config.upper_percentile
    )
    # Points are grouped by consumer in row order; searchsorted yields
    # each consumer's slice (empty slices for consumers whose bins were
    # all dropped — fit_bands raises for those, like the reference).
    row_splits = np.searchsorted(seg_row, np.arange(n + 1))
    return row_splits, temps, lower, upper, counts.astype(np.float64)


# T2/T3 stacked least squares ------------------------------------------------
#
# Each helper below replicates one reference expression from
# repro.core.stats.PrefixSumOLS / repro.core.threeline elementwise; the
# comments name the replicated callable.  Do not "simplify" the algebra:
# changing the operation order changes the rounding path and breaks the
# bit-identity contract.


def _prefix_sums(x: np.ndarray, y: np.ndarray, w: np.ndarray) -> dict:
    """Per-row prefix sums with a leading zero (PrefixSumOLS.__init__).

    ``x``/``y``/``w`` are zero-padded ``(m, P)`` matrices; padding sits
    past each row's valid prefix, so the valid prefix sums are the exact
    sequential ``np.cumsum`` values the reference computes per consumer.
    """
    m, P = x.shape

    def acc(values: np.ndarray) -> np.ndarray:
        out = np.zeros((m, P + 1))
        np.cumsum(values, axis=1, out=out[:, 1:])
        return out

    return {
        "sw": acc(w),
        "sx": acc(w * x),
        "sy": acc(w * y),
        "sxx": acc(w * x * x),
        "sxy": acc(w * x * y),
        "syy": acc(w * y * y),
    }


def _segment_terms(ps: dict, rows, a, b) -> tuple:
    """Windowed sums of segments ``[a, b)`` (PrefixSumOLS.fit prologue)."""
    return tuple(
        ps[key][rows, b] - ps[key][rows, a]
        for key in ("sw", "sx", "sy", "sxx", "sxy", "syy")
    )


def _segment_sse(ps: dict, rows, a, b) -> np.ndarray:
    """SSE of the best line over each segment (PrefixSumOLS.sse)."""
    sw, sx, sy, sxx, sxy, syy = _segment_terms(ps, rows, a, b)
    with np.errstate(all="ignore"):
        varx = sxx - sx * sx / sw
        covxy = sxy - sx * sy / sw
        vary = syy - sy * sy / sw
        slope = covxy / varx
        sse = np.where(
            varx < 1e-12,
            np.maximum(0.0, vary),
            np.maximum(0.0, vary - slope * covxy),
        )
    return np.where(b - a == 1, 0.0, sse)


def _segment_lines(ps: dict, rows, a, b) -> tuple[np.ndarray, np.ndarray]:
    """Slope and intercept of the best line per segment (PrefixSumOLS.fit)."""
    sw, sx, sy, sxx, sxy, syy = _segment_terms(ps, rows, a, b)
    with np.errstate(all="ignore"):
        mean = sy / sw
        varx = sxx - sx * sx / sw
        covxy = sxy - sx * sy / sw
        slope = covxy / varx
        intercept = (sy - slope * sx) / sw
        degenerate = (b - a == 1) | (varx < 1e-12)
        slope = np.where(degenerate, 0.0, slope)
        intercept = np.where(degenerate, mean, intercept)
    return slope, intercept


def _scan_candidates(totals: np.ndarray, valid: np.ndarray) -> int:
    """The reference T2 selection loop, verbatim, over precomputed totals.

    Replicates ``_best_breakpoints``'s ``total < best - 1e-15`` update
    rule (first candidate wins ties) for the rare consumers whose
    minimum is not unique within the tolerance — argmin alone cannot
    reproduce the sequential tie behaviour there.
    """
    best_val = None
    best_p = -1
    for p in np.flatnonzero(valid):
        t = totals[p]
        if best_val is None or t < best_val - 1e-15:
            best_val = t
            best_p = p
    return best_p


def _stacked_breakpoints(
    ps: dict, sizes: np.ndarray, min_pts: int, grid: dict
) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Phase T2 for one band over a consumer slice: best (i, j) + total SSE."""
    m = sizes.size
    rows = np.arange(m)[:, None]
    pi, pj, i_vals, j_vals = grid["pi"], grid["pj"], grid["i_vals"], grid["j_vals"]

    left = _segment_sse(ps, rows, 0, i_vals[None, :])
    right = _segment_sse(ps, rows, j_vals[None, :], sizes[:, None])
    mid = _segment_sse(ps, rows, pi[None, :], pj[None, :])
    # Reference association order: (sse_left + sse_mid) + sse_right.
    totals = (left[:, pi - i_vals[0]] + mid) + right[:, pj - j_vals[0]]
    valid = pj[None, :] <= (sizes - min_pts)[:, None]
    totals[~valid] = np.inf

    flat_rows = np.arange(m)
    best = np.argmin(totals, axis=1)
    best_total = totals[flat_rows, best]
    # Near-ties within the scan tolerance: replay the sequential rule.
    near = totals <= best_total[:, None] + 1e-15
    for c in np.flatnonzero(near.sum(axis=1) > 1):
        best[c] = _scan_candidates(totals[c], valid[c])
        best_total[c] = totals[c, best[c]]
    return pi[best], pj[best], best_total


def _join_lines(
    outer_s: np.ndarray,
    outer_i: np.ndarray,
    inner_s: np.ndarray,
    inner_i: np.ndarray,
    gap_lo: np.ndarray,
    gap_hi: np.ndarray,
) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Phase T3 join of an outer line onto the middle one (_make_continuous).

    Returns ``(new_intercept, breakpoint_x, adjusted)``; the slope never
    changes (the reference shifts only the intercept).
    """
    with np.errstate(all="ignore"):
        denom = outer_s - inner_s  # Line.intersection_x
        cross = (inner_i - outer_i) / denom
        use_cross = (np.abs(denom) >= 1e-12) & (gap_lo <= cross) & (cross <= gap_hi)
        mid_x = 0.5 * (gap_lo + gap_hi)
        target = inner_s * mid_x + inner_i  # inner.predict(breakpoint_x)
        fixed_i = target - outer_s * mid_x
    bp = np.where(use_cross, cross, mid_x)
    new_i = np.where(use_cross, outer_i, fixed_i)
    return new_i, bp, ~use_cross


def _band_fit(ps: dict, sizes: np.ndarray, min_pts: int, grid: dict) -> dict:
    """Phase T2 for one band over a consumer slice, fully stacked."""
    rows = np.arange(sizes.size)
    i, j, total = _stacked_breakpoints(ps, sizes, min_pts, grid)
    left_s, left_i = _segment_lines(ps, rows, np.zeros_like(i), i)
    mid_s, mid_i = _segment_lines(ps, rows, i, j)
    right_s, right_i = _segment_lines(ps, rows, j, sizes)
    return {
        "i": i,
        "j": j,
        "sse": total,
        "slopes": (left_s, mid_s, right_s),
        "intercepts": (left_i, mid_i, right_i),
    }


def _band_join(fit: dict, temps_pad: np.ndarray) -> dict:
    """Phase T3 for one band over a consumer slice (_make_continuous)."""
    rows = np.arange(fit["sse"].size)
    i, j = fit["i"], fit["j"]
    left_s, mid_s, right_s = fit["slopes"]
    left_i, mid_i, right_i = fit["intercepts"]
    # The gap between adjacent segments is [temps[i-1], temps[i]].
    new_left_i, b1, adj1 = _join_lines(
        left_s, left_i, mid_s, mid_i, temps_pad[rows, i - 1], temps_pad[rows, i]
    )
    new_right_i, b2, adj2 = _join_lines(
        right_s, right_i, mid_s, mid_i, temps_pad[rows, j - 1], temps_pad[rows, j]
    )
    return {
        "slopes": (left_s, mid_s, right_s),
        "intercepts": (new_left_i, mid_i, new_right_i),
        "b1": b1,
        "b2": b2,
        "sse": fit["sse"],
        "adjusted": adj1 | adj2,
    }


def _piecewise_min(band: dict, x: np.ndarray) -> np.ndarray:
    """Minimum of PiecewiseLines.predict over candidate columns ``x``."""
    (ls, ms, rs), (li, mi, ri) = band["slopes"], band["intercepts"]
    b1, b2 = band["b1"][:, None], band["b2"][:, None]
    pred = np.where(
        x < b1,
        ls[:, None] * x + li[:, None],
        np.where(x < b2, ms[:, None] * x + mi[:, None], rs[:, None] * x + ri[:, None]),
    )
    return pred.min(axis=1)


def _band_to_piecewise(band: dict, c: int) -> PiecewiseLines:
    """Materialize one consumer's band as the reference dataclasses."""
    (ls, ms, rs), (li, mi, ri) = band["slopes"], band["intercepts"]
    return PiecewiseLines(
        lines=(
            Line(float(ls[c]), float(li[c])),
            Line(float(ms[c]), float(mi[c])),
            Line(float(rs[c]), float(ri[c])),
        ),
        breakpoints=(float(band["b1"][c]), float(band["b2"][c])),
        sse=float(band["sse"][c]),
        adjusted=bool(band["adjusted"][c]),
    )


def _pair_grid(P: int, min_pts: int) -> dict:
    """All candidate (i, j) pairs for point counts up to ``P``.

    Pairs are laid out in the reference's lexicographic loop order, so
    index-into-grid positions can replay the sequential scan exactly.
    """
    i_vals = np.arange(min_pts, max(min_pts, P - 2 * min_pts) + 1)
    j_vals = np.arange(2 * min_pts, max(2 * min_pts, P - min_pts) + 1)
    pi_parts, pj_parts = [], []
    for i in i_vals:
        js = np.arange(i + min_pts, P - min_pts + 1)
        pi_parts.append(np.full(js.size, i))
        pj_parts.append(js)
    return {
        "pi": np.concatenate(pi_parts),
        "pj": np.concatenate(pj_parts),
        "i_vals": i_vals,
        "j_vals": j_vals,
    }


def batched_fit_bands(
    row_splits: np.ndarray,
    temps: np.ndarray,
    lower: np.ndarray,
    upper: np.ndarray,
    counts: np.ndarray,
    config: ThreeLineConfig | None = None,
    phases: PhaseTimes | None = None,
) -> list[ThreeLineModel]:
    """Phases T2+T3 for every consumer at once, bit-identical to ``fit_bands``.

    Inputs are the flat point arrays of :func:`batched_percentile_points`
    (consumer ``c`` owns slice ``row_splits[c]:row_splits[c+1]``).  Error
    behaviour matches the per-consumer loop: the first consumer with too
    few points raises :class:`~repro.exceptions.InsufficientDataError`
    with the reference message, non-ascending temps raise
    :class:`~repro.exceptions.DataError`.
    """
    cfg = config or ThreeLineConfig()
    min_pts = cfg.min_segment_points
    row_splits = np.asarray(row_splits, dtype=np.int64)
    n = row_splits.size - 1
    sizes_all = np.diff(row_splits)

    # Replicate the reference's per-consumer error order: for the first
    # offending consumer, non-ascending temps (fit_bands) outrank too few
    # points (_best_breakpoints).  Point arrays are flat, so a backward
    # temperature step inside a consumer is a descent position that is
    # not a consumer boundary.
    short = sizes_all < 3 * min_pts
    descent = np.zeros(n, dtype=bool)
    backward = np.flatnonzero(np.diff(temps) <= 0) + 1
    backward = backward[~np.isin(backward, row_splits[1:-1])]
    if backward.size:
        descent[np.searchsorted(row_splits, backward, side="right") - 1] = True
    bad = np.flatnonzero(short | descent)
    if bad.size:
        c = int(bad[0])
        if descent[c] and sizes_all[c] >= 2:
            raise DataError("percentile points must have strictly ascending temps")
        raise InsufficientDataError(
            f"{int(sizes_all[c])} percentile points cannot support "
            f"three segments of >= {min_pts}"
        )

    P = int(sizes_all.max())
    grid = _pair_grid(P, min_pts)
    chunk = max(1, _PAIR_ELEMENT_BUDGET // max(1, grid["pi"].size))

    models: list[ThreeLineModel] = []
    t2_total = 0.0
    t3_total = 0.0
    for lo in range(0, n, chunk):
        hi = min(n, lo + chunk)
        sizes = sizes_all[lo:hi]
        m = hi - lo
        mask = np.arange(P)[None, :] < sizes[:, None]
        x = np.zeros((m, P))
        y_lo = np.zeros((m, P))
        y_up = np.zeros((m, P))
        w = np.zeros((m, P))
        flat = slice(row_splits[lo], row_splits[hi])
        x[mask] = temps[flat]
        y_lo[mask] = lower[flat]
        y_up[mask] = upper[flat]
        # PrefixSumOLS weights: bin counts, or ones when unweighted.
        w[mask] = counts[flat] if cfg.weight_by_count else 1.0

        tic = time.perf_counter()
        fit_lo = _band_fit(_prefix_sums(x, y_lo, w), sizes, min_pts, grid)
        fit_up = _band_fit(_prefix_sums(x, y_up, w), sizes, min_pts, grid)
        t2_total += time.perf_counter() - tic

        tic = time.perf_counter()
        band_lo = _band_join(fit_lo, x)
        band_up = _band_join(fit_up, x)
        rows = np.arange(m)
        t_lo = x[rows, 0]
        t_hi = x[rows, sizes - 1]
        # Derived quantities (fit_bands): heating/cooling gradients come
        # from the upper band's outer slopes; base load is the minimum of
        # the lower band over [t_lo, b1, b2, t_hi].
        candidates = np.stack(
            [t_lo, band_lo["b1"], band_lo["b2"], t_hi], axis=1
        )
        base_load = _piecewise_min(band_lo, candidates)

        for c in range(m):
            b_lower = _band_to_piecewise(band_lo, c)
            b_upper = _band_to_piecewise(band_up, c)
            models.append(
                ThreeLineModel(
                    band_upper=b_upper,
                    band_lower=b_lower,
                    heating_gradient=float(-b_upper.lines[0].slope),
                    cooling_gradient=float(b_upper.lines[2].slope),
                    base_load=float(base_load[c]),
                    temperature_range=(float(t_lo[c]), float(t_hi[c])),
                )
            )
        t3_total += time.perf_counter() - tic

    if phases is not None:
        phases.add(PhaseTimes(0.0, t2_total, t3_total))
    return models


def batched_three_lines(
    consumption: np.ndarray,
    temperature: np.ndarray,
    config: ThreeLineConfig | None = None,
    phases: PhaseTimes | None = None,
) -> list[ThreeLineModel]:
    """Task 2 for all consumers; every phase batched.

    Bit-identical to calling
    :func:`~repro.core.threeline.fit_three_lines` on each row (module
    docstring states the contract).  With ``phases``, each batched phase
    is accounted in one increment (the loop reference accumulates per
    consumer; the totals are comparable).
    """
    cfg = config or ThreeLineConfig()
    consumption = np.asarray(consumption, dtype=np.float64)
    temperature = np.asarray(temperature, dtype=np.float64)
    if consumption.shape != temperature.shape or consumption.ndim != 2:
        raise DataError(
            f"consumption {consumption.shape} and temperature "
            f"{temperature.shape} must be equal-shape (n, hours) matrices"
        )
    if np.isnan(consumption).any() or np.isnan(temperature).any():
        raise DataError("series contains NaN; impute before analysis")

    tic = time.perf_counter()
    row_splits, temps, lower, upper, counts = batched_percentile_points(
        consumption, temperature, cfg
    )
    if phases is not None:
        phases.add(PhaseTimes(time.perf_counter() - tic, 0.0, 0.0))

    return batched_fit_bands(row_splits, temps, lower, upper, counts, cfg, phases)


__all__ = [
    "batched_fit_bands",
    "batched_percentile_points",
    "batched_three_lines",
    "fit_bands",
]
