"""Task 2 with a batched T1: one lexsort for all consumers' percentiles.

Phase T1 of the 3-line algorithm groups each consumer's readings by
rounded temperature and takes the 10th/90th percentile of every group.
The per-consumer loop pays an ``argsort`` plus a Python-level loop over
temperature bins *per consumer*; this module does the grouping for the
whole ``(n, hours)`` matrix with a single lexsort of
``(consumer, temperature-bin, consumption)`` keys, after which every
(consumer, bin) group is a contiguous, value-sorted segment.  Segment
percentiles then come out of four gather operations (the
``np.add.reduceat`` trick, applied to order statistics instead of sums).

Phases T2 (breakpoint search) and T3 (continuity adjustment) are
per-consumer by nature — the search is over one consumer's ~50
percentile points — and reuse the existing
:func:`repro.core.threeline.fit_bands` unchanged, which keeps the
results *bit-identical* to the loop reference: the batched T1 produces
the exact same point arrays (temps, percentiles, counts) the reference
``_percentile_points`` builds, and identical inputs to ``fit_bands``
yield identical models.
"""

from __future__ import annotations

import time

import numpy as np

from repro.core.threeline import (
    PhaseTimes,
    ThreeLineConfig,
    ThreeLineModel,
    fit_bands,
)
from repro.exceptions import DataError


def _segment_percentile(
    sorted_values: np.ndarray,
    starts: np.ndarray,
    counts: np.ndarray,
    q: float,
) -> np.ndarray:
    """Linear-interpolation percentile of each value-sorted segment.

    Replicates :func:`repro.core.stats.percentile_linear` expression for
    expression so the results are bit-identical.
    """
    rank = (q / 100.0) * (counts - 1)
    lo = np.floor(rank).astype(np.int64)
    hi = np.minimum(lo + 1, counts - 1)
    frac = rank - lo
    v_lo = sorted_values[starts + lo]
    v_hi = sorted_values[starts + hi]
    return v_lo * (1 - frac) + v_hi * frac


def batched_percentile_points(
    consumption: np.ndarray,
    temperature: np.ndarray,
    config: ThreeLineConfig,
) -> tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
    """Phase T1 for every consumer at once.

    Returns ``(row_splits, temps, lower, upper, counts)``: the last four
    arrays hold every kept percentile point, ordered by (consumer,
    temperature); consumer ``i``'s points are the slice
    ``row_splits[i]:row_splits[i + 1]``.  Point values are bit-identical
    to the reference per-consumer ``_percentile_points``.
    """
    n, hours = consumption.shape
    bins = np.round(temperature / config.bin_width).astype(np.int64)
    # One composite integer key per reading — (consumer, bin) — so a
    # two-key lexsort with the consumption value as tie-breaker leaves
    # every (consumer, bin) group contiguous *and* value-sorted.
    bin_lo = int(bins.min())
    span = int(bins.max()) - bin_lo + 1
    composite = (np.arange(n, dtype=np.int64) * span)[:, None] + (bins - bin_lo)
    order = np.lexsort((consumption.ravel(), composite.ravel()))
    sorted_comp = composite.ravel()[order]
    sorted_cons = consumption.ravel()[order]

    boundaries = np.flatnonzero(np.diff(sorted_comp)) + 1
    starts = np.concatenate([[0], boundaries])
    ends = np.concatenate([boundaries, [sorted_comp.size]])
    counts = ends - starts

    keep = counts >= config.min_bin_count
    starts, counts = starts[keep], counts[keep]
    seg_comp = sorted_comp[starts]
    seg_row = seg_comp // span
    seg_bin = seg_comp - seg_row * span + bin_lo

    temps = seg_bin * config.bin_width
    lower = _segment_percentile(
        sorted_cons, starts, counts, config.lower_percentile
    )
    upper = _segment_percentile(
        sorted_cons, starts, counts, config.upper_percentile
    )
    # Points are grouped by consumer in row order; searchsorted yields
    # each consumer's slice (empty slices for consumers whose bins were
    # all dropped — fit_bands raises for those, like the reference).
    row_splits = np.searchsorted(seg_row, np.arange(n + 1))
    return row_splits, temps, lower, upper, counts.astype(np.float64)


def batched_three_lines(
    consumption: np.ndarray,
    temperature: np.ndarray,
    config: ThreeLineConfig | None = None,
    phases: PhaseTimes | None = None,
) -> list[ThreeLineModel]:
    """Task 2 for all consumers; T1 batched, T2+T3 via ``fit_bands``.

    Bit-identical to calling
    :func:`~repro.core.threeline.fit_three_lines` on each row.  With
    ``phases``, the whole batched grouping is accounted to T1 in one
    increment (the loop reference accumulates it per consumer; the
    totals are comparable).
    """
    cfg = config or ThreeLineConfig()
    consumption = np.asarray(consumption, dtype=np.float64)
    temperature = np.asarray(temperature, dtype=np.float64)
    if consumption.shape != temperature.shape or consumption.ndim != 2:
        raise DataError(
            f"consumption {consumption.shape} and temperature "
            f"{temperature.shape} must be equal-shape (n, hours) matrices"
        )
    if np.isnan(consumption).any() or np.isnan(temperature).any():
        raise DataError("series contains NaN; impute before analysis")

    tic = time.perf_counter()
    row_splits, temps, lower, upper, counts = batched_percentile_points(
        consumption, temperature, cfg
    )
    if phases is not None:
        phases.add(PhaseTimes(time.perf_counter() - tic, 0.0, 0.0))

    models: list[ThreeLineModel] = []
    for i in range(consumption.shape[0]):
        s, e = row_splits[i], row_splits[i + 1]
        models.append(
            fit_bands(temps[s:e], lower[s:e], upper[s:e], counts[s:e], cfg, phases)
        )
    return models
