"""Kernel dispatch: loop vs batched, composed with the process pool.

Three strategies, selected through ``BenchmarkSpec(kernel=...)`` or the
``smartbench --kernel`` flag:

* ``"loop"`` — the reference per-consumer Python loop (the default;
  existing behaviour, bit for bit);
* ``"batched"`` — the whole-matrix kernels of this package;
* ``"auto"`` — batched when the dataset has at least
  :data:`AUTO_BATCH_MIN_CONSUMERS` consumers, loop below that (tiny
  inputs don't amortize the batched setup).

Composition with :mod:`repro.parallel`: with ``n_jobs != 1`` the batched
kernel runs *inside each worker* on that worker's contiguous consumer
chunk (:func:`repro.parallel.executor.parallel_map_consumer_chunks`) —
the pool splits the matrix, the batched kernel eats each slice whole.
Because every batched kernel treats consumers independently (histogram
rows, per-(consumer, bin) lexsort segments, per-hour-model Gram
systems), chunking cannot change the results: any ``kernel`` ×
``n_jobs`` combination agrees with the serial loop reference within the
package's equivalence contract (bit-identical for histogram/3-line,
documented tolerance for PAR — see :mod:`repro.batched.par`).

Only the three per-consumer tasks dispatch here; similarity is
all-pairs and already whole-matrix in its reference form.
"""

from __future__ import annotations

from typing import Any, Callable

from repro.core.benchmark import (
    KERNEL_STRATEGIES,
    PER_CONSUMER_TASKS,
    BenchmarkSpec,
    Task,
)
from repro.core.par import ParConfig
from repro.core.threeline import ThreeLineConfig

from repro.batched.histogram import batched_histograms
from repro.batched.par import batched_par
from repro.batched.threeline import batched_three_lines

#: ``"auto"`` switches to the batched kernels at this consumer count.
#: Below it the batched setup (key construction, einsum dispatch) costs
#: about as much as the loop it replaces.
AUTO_BATCH_MIN_CONSUMERS = 8


def resolve_kernel(kernel: str, n_consumers: int) -> str:
    """Resolve a strategy name to the concrete kernel: loop or batched."""
    if kernel not in KERNEL_STRATEGIES:
        raise ValueError(
            f"unknown kernel strategy {kernel!r}; "
            f"expected one of {KERNEL_STRATEGIES}"
        )
    if kernel == "auto":
        return "batched" if n_consumers >= AUTO_BATCH_MIN_CONSUMERS else "loop"
    return kernel


def wants_batched(kernel: str, n_consumers: int) -> bool:
    """True when the strategy resolves to the batched kernels."""
    return resolve_kernel(kernel, n_consumers) == "batched"


# Chunk kernels --------------------------------------------------------------
#
# Uniform picklable signature — ``chunk_kernel(consumption_matrix,
# temperature_matrix, **kwargs) -> list[result]`` — the whole-matrix twin
# of the per-consumer kernels in :mod:`repro.parallel.kernels`.  Workers
# import them by name, so they must stay module-level.


def histogram_chunk_kernel(consumption, temperature, *, n_buckets: int = 10):
    """Task 1 for a consumer chunk (temperature unused, uniform signature)."""
    return batched_histograms(consumption, n_buckets)


def threeline_chunk_kernel(
    consumption, temperature, *, config: ThreeLineConfig | None = None
):
    """Task 2 for a consumer chunk (phase timing is a serial-only feature)."""
    return batched_three_lines(consumption, temperature, config)


def par_chunk_kernel(
    consumption, temperature, *, config: ParConfig | None = None
):
    """Task 3 for a consumer chunk."""
    return batched_par(consumption, temperature, config)


def chunk_kernel_for(
    task: Task, spec: BenchmarkSpec
) -> tuple[Callable[..., list], dict[str, Any]]:
    """The batched chunk kernel and its kwargs for a per-consumer task."""
    if task is Task.HISTOGRAM:
        return histogram_chunk_kernel, {"n_buckets": spec.n_buckets}
    if task is Task.THREELINE:
        return threeline_chunk_kernel, {"config": spec.threeline}
    if task is Task.PAR:
        return par_chunk_kernel, {"config": spec.par}
    raise ValueError(
        f"task {task!r} has no batched kernel; "
        f"batched dispatch covers {[t.value for t in PER_CONSUMER_TASKS]}"
    )


def run_batched_task(
    dataset, task: Task, spec: BenchmarkSpec | None = None, report=None
) -> dict[str, Any]:
    """Run a per-consumer task with the batched kernels.

    Honours ``spec.n_jobs`` by fanning consumer chunks over the process
    pool with the batched kernel applied per chunk.  Returns
    ``{consumer_id: result}`` in dataset order, like
    :func:`~repro.core.benchmark.run_task_reference`.  The spec's
    resilience knobs apply: pooled runs are supervised, and under
    ``on_error="quarantine"`` poisoned rows are located by bisection
    (chunking-invariance makes the splitting harmless) and reported
    instead of raising.
    """
    from repro.resilience.policy import policy_for_spec

    spec = spec or BenchmarkSpec()
    chunk_kernel, kwargs = chunk_kernel_for(task, spec)
    policy = policy_for_spec(spec)
    if spec.n_jobs != 1:
        from repro.parallel.executor import parallel_map_consumer_chunks

        return parallel_map_consumer_chunks(
            chunk_kernel,
            dataset,
            n_jobs=spec.n_jobs,
            policy=policy,
            report=report,
            task_label=task.value,
            **kwargs,
        )
    if policy.quarantine:
        from repro.parallel.executor import _finalize_consumer_results
        from repro.resilience.worker import guarded_matrix

        results = guarded_matrix(
            chunk_kernel, dataset.consumption, dataset.temperature, kwargs
        )
        return _finalize_consumer_results(
            dataset.consumer_ids, results, task.value, report
        )
    # Serial batched runs prime the measured dispatch cost model: the
    # per-item estimate recorded here is what lets a later pooled run of
    # the same task choose its chunk count (or decline to dispatch).
    import time

    from repro.cluster.costmodel import get_kernel_cost_tracker

    tic = time.perf_counter()
    results = chunk_kernel(dataset.consumption, dataset.temperature, **kwargs)
    get_kernel_cost_tracker().observe(
        task.value, time.perf_counter() - tic, dataset.n_consumers
    )
    return dict(zip(dataset.consumer_ids, results))
